// BitMatrix: a dense rows x cols bit matrix with word-aligned rows.
//
// Rows are stored contiguously and padded to a word boundary so that
// row-level subset tests (the inner loop of crossbar row matching) operate
// on whole 64-bit words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mcx {

class BitMatrix {
public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols, bool value = false);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  // Inline: per-bit access shows up in the mappers' per-sample loops
  // (phase-2 sub-adjacency extraction, defect placement).
  bool test(std::size_t r, std::size_t c) const {
    checkBit(r, c);
    return (w_[r * wordsPerRow_ + c / kWordBits] >> (c % kWordBits)) & 1u;
  }
  void set(std::size_t r, std::size_t c) {
    checkBit(r, c);
    w_[r * wordsPerRow_ + c / kWordBits] |= Word{1} << (c % kWordBits);
  }
  void set(std::size_t r, std::size_t c, bool value) { value ? set(r, c) : reset(r, c); }
  void reset(std::size_t r, std::size_t c) {
    checkBit(r, c);
    w_[r * wordsPerRow_ + c / kWordBits] &= ~(Word{1} << (c % kWordBits));
  }

  void setRow(std::size_t r, bool value);
  void setCol(std::size_t c, bool value);

  /// Set or clear every bit, keeping the dimensions.
  void fill(bool value);
  /// Resize to rows x cols with every bit set to @p value, reusing the
  /// existing allocation when possible (scratch-arena reuse in the Monte
  /// Carlo engine).
  void reshape(std::size_t rows, std::size_t cols, bool value = false);

  /// Number of set bits in the whole matrix.
  std::size_t count() const;
  /// Number of set bits in row @p r.
  std::size_t rowCount(std::size_t r) const;
  /// Number of set bits in column @p c.
  std::size_t colCount(std::size_t c) const;

  /// True iff every set bit of row @p r is also set in row @p r2 of @p o.
  /// This is the crossbar matching rule: a "required" pattern row fits a
  /// "capability" row.
  bool rowSubsetOf(std::size_t r, const BitMatrix& o, std::size_t r2) const;

  // Inline: these sit under every hot loop (row matching, adjacency
  // derivation, sparse sampling), where an out-of-line call per row access
  // is measurable.
  std::span<const Word> rowWords(std::size_t r) const {
    checkRow(r);
    return {w_.data() + r * wordsPerRow_, wordsPerRow_};
  }
  std::span<Word> rowWords(std::size_t r) {
    checkRow(r);
    return {w_.data() + r * wordsPerRow_, wordsPerRow_};
  }

  bool operator==(const BitMatrix& o) const = default;

  /// Multi-line string; '1' for set, '.' for clear (readable layouts).
  std::string toString(char zero = '.', char one = '1') const;

  /// Transpose @p src into this matrix (reshaped to cols x rows), via
  /// word-parallel 64x64 block transposes — O(area/64 log 64) word ops, the
  /// per-sample cost of the incremental-adjacency fast path.
  void assignTransposed(const BitMatrix& src);

  /// Mask selecting the valid bits of a row's last word when a row of
  /// @p bits columns is stored LSB-first in 64-bit words (~0 when the row
  /// ends exactly on a word boundary). The single home of the tail-mask
  /// idiom for every word-parallel kernel over row-major bit data.
  static constexpr Word tailMask(std::size_t bits) {
    const std::size_t rem = bits % kWordBits;
    return rem == 0 ? ~Word{0} : (Word{1} << rem) - 1;
  }

private:
  // Inline happy-path checks: only the [[noreturn]] throw inside
  // MCX_REQUIRE is out of line.
  void checkRow(std::size_t r) const {
    MCX_REQUIRE(r < rows_, "BitMatrix::rowWords out of range");
  }
  void checkBit(std::size_t r, std::size_t c) const {
    MCX_REQUIRE(r < rows_ && c < cols_, "BitMatrix: bit access out of range");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t wordsPerRow_ = 0;
  std::vector<Word> w_;
};

}  // namespace mcx
