// BitMatrix: a dense rows x cols bit matrix with word-aligned rows.
//
// Rows are stored contiguously and padded to a word boundary so that
// row-level subset tests (the inner loop of crossbar row matching) operate
// on whole 64-bit words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mcx {

class BitMatrix {
public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols, bool value = false);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  bool test(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c);
  void set(std::size_t r, std::size_t c, bool value);
  void reset(std::size_t r, std::size_t c);

  void setRow(std::size_t r, bool value);
  void setCol(std::size_t c, bool value);

  /// Set or clear every bit, keeping the dimensions.
  void fill(bool value);
  /// Resize to rows x cols with every bit set to @p value, reusing the
  /// existing allocation when possible (scratch-arena reuse in the Monte
  /// Carlo engine).
  void reshape(std::size_t rows, std::size_t cols, bool value = false);

  /// Number of set bits in the whole matrix.
  std::size_t count() const;
  /// Number of set bits in row @p r.
  std::size_t rowCount(std::size_t r) const;
  /// Number of set bits in column @p c.
  std::size_t colCount(std::size_t c) const;

  /// True iff every set bit of row @p r is also set in row @p r2 of @p o.
  /// This is the crossbar matching rule: a "required" pattern row fits a
  /// "capability" row.
  bool rowSubsetOf(std::size_t r, const BitMatrix& o, std::size_t r2) const;

  std::span<const Word> rowWords(std::size_t r) const;
  std::span<Word> rowWords(std::size_t r);

  bool operator==(const BitMatrix& o) const = default;

  /// Multi-line string; '1' for set, '.' for clear (readable layouts).
  std::string toString(char zero = '.', char one = '1') const;

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t wordsPerRow_ = 0;
  std::vector<Word> w_;
};

}  // namespace mcx
