// Environment-variable overrides for the benchmark harness.
#pragma once

#include <cstdlib>
#include <string>

namespace mcx {

/// Read a non-negative integer from the environment, or @p fallback.
inline std::size_t envSizeT(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  try {
    return std::stoul(value);
  } catch (...) {
    return fallback;
  }
}

}  // namespace mcx
