#include "util/rng.hpp"

#include <bit>
#include <cmath>

namespace mcx {

namespace {
// splitmix64: used to expand the user seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// std::lgamma stores its sign result in the libm global `signgam`, so
// concurrent per-worker samplers race on it (TSan-visible). The reentrant
// variant returns the bit-identical value without touching shared state.
double logGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniformInt(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t range = hi - lo + 1;  // hi == max is not used in practice
  if (range == 0) return (*this)();
  // Lemire's rejection method for unbiased bounded integers.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t t = (0 - range) % range;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double nd = static_cast<double>(n);
  // PMF at the mode via log-gamma (never underflows: the mode's mass is
  // ~1/stddev), then multiplicative recurrences towards both tails.
  std::uint64_t mode = static_cast<std::uint64_t>((nd + 1.0) * p);
  if (mode > n) mode = n;
  const double md = static_cast<double>(mode);
  const double logPm = logGamma(nd + 1.0) - logGamma(md + 1.0) -
                       logGamma(nd - md + 1.0) + md * std::log(p) +
                       (nd - md) * std::log1p(-p);
  const double pMode = std::exp(logPm);
  const double odds = p / (1.0 - p);

  // Invert a reordered CDF: subtract mass alternately above/below the mode
  // until the uniform is exhausted. Any fixed ordering of the outcomes is a
  // valid inversion; outward-from-the-mode keeps the expected walk short.
  double u = uniform() - pMode;
  if (u < 0.0) return mode;
  double massHi = pMode, massLo = pMode;
  std::uint64_t hi = mode, lo = mode;
  for (;;) {
    bool advanced = false;
    if (hi < n) {
      massHi *= (nd - static_cast<double>(hi)) / (static_cast<double>(hi) + 1.0) * odds;
      ++hi;
      u -= massHi;
      if (u < 0.0) return hi;
      advanced = true;
    }
    if (lo > 0) {
      massLo *= static_cast<double>(lo) / (nd - static_cast<double>(lo) + 1.0) / odds;
      --lo;
      u -= massLo;
      if (u < 0.0) return lo;
      advanced = true;
    }
    // Rounding can leave a sliver of u after all mass is consumed.
    if (!advanced) return mode;
  }
}

Rng Rng::split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ull); }

}  // namespace mcx
