// DynBits: a dynamically sized bitset over 64-bit words.
//
// This is the workhorse of the cube/cover representation (logic/) and of the
// crossbar matrices (xbar/). Word-level access is part of the public API so
// that hot loops (row matching, cube intersection) can run at memory speed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcx {

class DynBits {
public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  DynBits() = default;
  /// Construct @p n bits, all initialized to @p value.
  explicit DynBits(std::size_t n, bool value = false);

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  bool test(std::size_t i) const;
  void set(std::size_t i);
  void set(std::size_t i, bool value);
  void reset(std::size_t i);
  void flip(std::size_t i);

  void setAll();
  void resetAll();

  /// Number of set bits.
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }
  /// True iff every bit is set.
  bool all() const;

  /// Index of the lowest set bit, or size() if none.
  std::size_t findFirst() const;
  /// Index of the lowest set bit at or after @p from, or size() if none.
  std::size_t findNext(std::size_t from) const;

  DynBits& operator&=(const DynBits& o);
  DynBits& operator|=(const DynBits& o);
  DynBits& operator^=(const DynBits& o);
  /// this &= ~o
  DynBits& andNot(const DynBits& o);

  friend DynBits operator&(DynBits a, const DynBits& b) { return a &= b; }
  friend DynBits operator|(DynBits a, const DynBits& b) { return a |= b; }
  friend DynBits operator^(DynBits a, const DynBits& b) { return a ^= b; }

  /// Bitwise complement within size().
  DynBits operator~() const;

  bool operator==(const DynBits& o) const;
  bool operator!=(const DynBits& o) const { return !(*this == o); }

  /// True iff every set bit of *this is also set in @p o.
  bool subsetOf(const DynBits& o) const;
  /// True iff (*this & o) has at least one set bit.
  bool intersects(const DynBits& o) const;

  /// Call @p fn(index) for every set bit, in increasing order.
  template <typename Fn>
  void forEachSet(Fn&& fn) const {
    for (std::size_t wi = 0; wi < w_.size(); ++wi) {
      Word w = w_[wi];
      while (w != 0) {
        const unsigned b = static_cast<unsigned>(__builtin_ctzll(w));
        fn(wi * kWordBits + b);
        w &= w - 1;
      }
    }
  }

  const std::vector<Word>& words() const { return w_; }
  std::vector<Word>& mutableWords() { return w_; }

  /// "10110..." with bit 0 first.
  std::string toString() const;

  /// Total-order comparison (for use as map keys / canonicalization).
  int compare(const DynBits& o) const;
  bool operator<(const DynBits& o) const { return compare(o) < 0; }

  std::size_t hash() const;

private:
  void maskTail();

  std::size_t n_ = 0;
  std::vector<Word> w_;
};

}  // namespace mcx
