// Minimal flag-value helpers shared by the bench/example CLIs.
//
// Each helper pulls the value of argv[i] (the flag currently being parsed),
// advancing i, and throws mcx::InvalidArgument on a missing value or a
// malformed number — the callers' try/catch turns that into a usage error.
// Unlike std::stoul/stod, the numeric forms reject trailing garbage
// ("--samples 12abc") and locale effects (std::from_chars).
#pragma once

#include <charconv>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace mcx::cli {

inline std::string stringValue(int argc, char** argv, int& i) {
  const std::string flag = argv[i];
  MCX_REQUIRE(i + 1 < argc, flag + " needs a value");
  return argv[++i];
}

namespace detail {
template <typename T>
T numberValue(int argc, char** argv, int& i) {
  const std::string flag = argv[i];
  const std::string text = stringValue(argc, argv, i);
  T value{};
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  MCX_REQUIRE(ec == std::errc() && end == text.data() + text.size(),
              flag + ": bad value \"" + text + "\"");
  return value;
}
}  // namespace detail

inline std::size_t sizeValue(int argc, char** argv, int& i) {
  return detail::numberValue<std::size_t>(argc, argv, i);
}

inline std::uint64_t u64Value(int argc, char** argv, int& i) {
  return detail::numberValue<std::uint64_t>(argc, argv, i);
}

inline double doubleValue(int argc, char** argv, int& i) {
  return detail::numberValue<double>(argc, argv, i);
}

}  // namespace mcx::cli
