// Minimal streaming JSON writer for machine-readable bench output.
//
// No reflection, no DOM: the caller opens/closes objects and arrays and the
// writer tracks comma placement and indentation. Strings are escaped;
// non-finite doubles are emitted as null so the output always parses.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mcx {

class JsonWriter {
public:
  /// @p pretty: indented multi-line output (the bench files). Pass false
  /// for compact single-line output — the experiment service's JSON-lines
  /// protocol, where one response must be exactly one '\n'-terminated line.
  explicit JsonWriter(std::ostream& out, bool pretty = true) : out_(out), pretty_(pretty) {}

  JsonWriter& beginObject() { return open('{'); }
  JsonWriter& endObject() { return close('}'); }
  JsonWriter& beginArray() { return open('['); }
  JsonWriter& endArray() { return close(']'); }

  JsonWriter& key(const std::string& name) {
    separate();
    writeString(name);
    out_ << ": ";
    pendingKey_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    separate();
    writeString(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v) {
    separate();
    out_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    separate();
    if (std::isfinite(v))
      out_ << v;
    else
      out_ << "null";
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separate();
    out_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separate();
    out_ << v;
    return *this;
  }
  JsonWriter& value(int v) {
    separate();
    out_ << v;
    return *this;
  }

  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

private:
  JsonWriter& open(char c) {
    separate();
    out_ << c;
    hasEntry_.push_back(false);
    return *this;
  }

  JsonWriter& close(char c) {
    if (pretty_) out_ << '\n';
    hasEntry_.pop_back();
    if (pretty_) indent();
    out_ << c;
    return *this;
  }

  void separate() {
    if (pendingKey_) {  // value right after its key: no comma, no newline
      pendingKey_ = false;
      return;
    }
    if (hasEntry_.empty()) return;
    if (hasEntry_.back()) out_ << ',';
    if (pretty_) out_ << '\n';
    hasEntry_.back() = true;
    if (pretty_) indent();
  }

  void indent() {
    for (std::size_t i = 0; i < hasEntry_.size(); ++i) out_ << "  ";
  }

  void writeString(const std::string& s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        default: out_ << c;
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<bool> hasEntry_;
  bool pendingKey_ = false;
  bool pretty_ = true;
};

}  // namespace mcx
