// TextTable: aligned plain-text tables for the benchmark harness output
// (the "same rows the paper reports" requirement), plus a tiny CSV writer.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mcx {

class TextTable {
public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; the row is padded / truncated to the header width.
  void addRow(std::vector<std::string> cells);

  std::size_t rowCount() const { return rows_.size(); }

  /// Render with column alignment and a header separator.
  std::string toString() const;
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

  /// Render as CSV (no quoting of separators inside cells; callers keep
  /// cells simple).
  std::string toCsv() const;

  // Formatting helpers used throughout the bench binaries.
  static std::string num(double v, int precision = 3);
  static std::string percent(double ratio, int precision = 0);

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcx
