// mcx::faultinject — compiled-in, env/flag-armed fault injection.
//
// A long-running service's failure behaviour (deadline enforcement, load
// shedding, clean drain) can only be *tested* if failures can be produced
// on demand: synthesis that throws, samples that stall long enough to blow
// a deadline, allocations that fail at admission. Product code calls
// onSite("name") at the few interesting sites; the hook is a single relaxed
// atomic load when nothing is armed (the permanent production state), and
// consults a mutex-guarded plan table when something is.
//
// Arming:
//   - programmatic (tests): faultinject::arm("mc.sample", {Kind::Stall, 5.0});
//   - environment (whole-process, e.g. under the daemon):
//       MCX_FAULTINJECT="circuit.synthesize=throw;mc.sample=stall:5"
//     entries are ';'-separated `site=kind[@<skip>][x<times>]` with kind one
//     of throw | badalloc | stall:<millis>. `@<skip>` lets that many hits
//     pass unharmed first and `x<times>` bounds how often the plan fires —
//     `mc.sample=throw@2x1` fails exactly the third sample. Parsed once on
//     first use; a malformed value aborts start-up loudly (a fault plan
//     that silently doesn't arm would fake test coverage).
//
// Sites compiled into the library:
//   circuit.synthesize — start of every (uncached) circuit build
//   mc.sample          — start of every Monte Carlo sample
//   serve.enqueue      — experiment-service request admission
//   sat.solve          — entry of every SatMapper solve (the SAT backend)
//   approx.evaluate    — entry of the ApproxMapper rescue path (graded
//                        partial mapping after an inner-mapper failure)
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace mcx {

/// What an armed Throw site raises: a distinct type so tests (and the
/// service's `internal` taxonomy bucket) can tell injected faults apart.
class FaultInjected : public Error {
public:
  explicit FaultInjected(const std::string& what) : Error(what) {}
};

namespace faultinject {

enum class Kind {
  Throw,     ///< throw mcx::FaultInjected
  BadAlloc,  ///< throw std::bad_alloc (the allocation-failure stand-in)
  Stall,     ///< sleep stallMillis (forces deadline misses / slow requests)
};

struct Plan {
  Kind kind = Kind::Throw;
  double stallMillis = 0;
  /// Let this many hits pass unharmed before firing (e.g. fail only the
  /// third synthesis).
  std::uint64_t skip = 0;
  /// Fire at most this many times, then fall dormant (hit counting
  /// continues).
  std::uint64_t times = UINT64_MAX;
  /// Fire with this probability per eligible hit (chaos soaks arm every
  /// site at a few percent instead of deterministically). Draws come from
  /// the registry's seeded RNG — see seed() — so a soak is replayable.
  /// Skipped draws count as hits but not as fires.
  double probability = 1.0;
};

namespace detail {
extern std::atomic<int> armedSites;  ///< fast-path gate
void onSiteSlow(const char* site);
}  // namespace detail

/// The product-code hook: no-op unless some site is armed.
inline void onSite(const char* site) {
  if (detail::armedSites.load(std::memory_order_relaxed) == 0) return;
  detail::onSiteSlow(site);
}

/// Arm @p site with @p plan (replacing any existing plan for the site).
void arm(const std::string& site, const Plan& plan);
/// Disarm one site (hit counts are kept until reset()).
void disarm(const std::string& site);
/// Disarm everything and zero all hit counts (test teardown).
void reset();
/// Times onSite(site) was reached while the registry was active (armed
/// sites only; counts keep accumulating after `times` fires are spent).
std::uint64_t hits(const std::string& site);
/// Times the site's plan actually fired (skip window passed, probability
/// draw succeeded) — the chaos soak's evidence that faults really flowed.
std::uint64_t fired(const std::string& site);

/// Seed the probability-draw RNG (deterministic soak replay). Also honored
/// from MCX_FAULTINJECT_SEED by armFromEnv(). Defaults to a fixed seed, so
/// probabilistic plans are replayable even unseeded.
void seed(std::uint64_t value);

/// Parse and arm a MCX_FAULTINJECT-style spec ("a=throw;b=stall:5@1x2",
/// "mc.sample=throw%3" — `@<skip>` / `x<times>` fill the Plan's skip/times
/// windows, `%<percent>` its firing probability). Throws mcx::ParseError
/// on malformed entries.
void armFromSpec(const std::string& spec);
/// Arm from the MCX_FAULTINJECT environment variable, once per process
/// (subsequent calls are no-ops); seeds the draw RNG from
/// MCX_FAULTINJECT_SEED when set. Called by the daemon at start-up.
void armFromEnv();

}  // namespace faultinject
}  // namespace mcx
