// Wall-clock timing for the experiment harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace mcx {

class Stopwatch {
public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  /// Elapsed nanoseconds since construction / restart (the span timebase).
  std::uint64_t nanos() const {
    const auto d = Clock::now() - start_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
  }

  /// Elapsed seconds since construction / restart / previous lap, and
  /// restart — splits one watch into consecutive stage timings.
  double lap() {
    const Clock::time_point now = Clock::now();
    const double elapsed = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return elapsed;
  }
  double lapMillis() { return lap() * 1e3; }

  /// Nanoseconds since a process-wide epoch (fixed at the first call).
  /// Monotonic and shared across threads — trace event timestamps.
  static std::uint64_t processNanos() {
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch)
            .count());
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mcx
