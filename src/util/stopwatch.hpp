// Wall-clock timing for the experiment harness.
#pragma once

#include <chrono>

namespace mcx {

class Stopwatch {
public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mcx
