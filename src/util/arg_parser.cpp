#include "util/arg_parser.hpp"

#include <algorithm>

namespace mcx::cli {

void ArgParser::addFlag(Flag flag) {
  MCX_REQUIRE(findFlag(flag.name) == nullptr, "duplicate flag " + flag.name);
  flags_.push_back(std::move(flag));
}

const ArgParser::Flag* ArgParser::findFlag(const std::string& name) const {
  for (const Flag& flag : flags_)
    if (flag.name == name) return &flag;
  return nullptr;
}

void ArgParser::add(const std::string& name, std::string* target, const std::string& valueName,
                    const std::string& doc) {
  addFlag({name, valueName, doc, false,
           [target](const std::string& value, std::ostream&) { *target = value; }});
}

void ArgParser::add(const std::string& name, std::optional<std::string>* target,
                    const std::string& valueName, const std::string& doc) {
  addFlag({name, valueName, doc, false,
           [target](const std::string& value, std::ostream&) { *target = value; }});
}

void ArgParser::addSwitch(const std::string& name, bool* target, const std::string& doc) {
  addFlag({name, "", doc, false,
           [target](const std::string&, std::ostream&) { *target = true; }});
}

void ArgParser::addCallback(const std::string& name, const std::string& valueName,
                            const std::string& doc,
                            std::function<void(const std::string&)> apply) {
  addFlag({name, valueName, doc, false,
           [apply = std::move(apply)](const std::string& value, std::ostream&) {
             apply(value);
           }});
}

void ArgParser::addAction(const std::string& name, const std::string& doc,
                          std::function<void(std::ostream&)> apply) {
  addFlag({name, "", doc, true,
           [apply = std::move(apply)](const std::string&, std::ostream& out) { apply(out); }});
}

void ArgParser::addPositional(const std::string& name, std::string* target,
                              const std::string& doc, bool required) {
  MCX_REQUIRE(positionals_.empty() || positionals_.back().required || !required,
              "required positional " + name + " after an optional one");
  positionals_.push_back({name, doc, required, target});
}

ArgParser::Outcome ArgParser::fail(std::ostream& err, const std::string& message) const {
  err << program_ << ": " << message << " (try --help)\n";
  return Outcome::Error;
}

ArgParser::Outcome ArgParser::parse(int argc, char** argv, std::ostream& out,
                                    std::ostream& err) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<std::size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args, out, err);
}

ArgParser::Outcome ArgParser::parse(const std::vector<std::string>& args, std::ostream& out,
                                    std::ostream& err) {
  std::size_t positional = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      printHelp(out);
      return Outcome::Handled;
    }
    const Flag* flag = findFlag(arg);
    if (flag == nullptr) {
      if (!arg.starts_with("--") && positional < positionals_.size()) {
        *positionals_[positional++].target = arg;
        continue;
      }
      return fail(err, arg.starts_with("--") ? "unknown flag " + arg
                                             : "unexpected argument \"" + arg + "\"");
    }
    std::string value;
    if (!flag->valueName.empty()) {
      if (i + 1 >= args.size()) return fail(err, arg + " needs a value");
      value = args[++i];
    }
    try {
      flag->apply(value, out);
    } catch (const std::exception& e) {
      return fail(err, e.what());
    }
    if (flag->exits) return Outcome::Handled;
  }
  for (std::size_t p = positional; p < positionals_.size(); ++p)
    if (positionals_[p].required)
      return fail(err, "missing required argument <" + positionals_[p].name + ">");
  return Outcome::Ok;
}

void ArgParser::printHelp(std::ostream& out) const {
  out << "usage: " << program_;
  if (!flags_.empty()) out << " [flags]";
  for (const Positional& pos : positionals_)
    out << (pos.required ? " <" + pos.name + ">" : " [" + pos.name + "]");
  out << "\n  " << summary_ << "\n";
  if (!positionals_.empty()) {
    out << "\narguments:\n";
    for (const Positional& pos : positionals_) out << "  " << pos.name << "  " << pos.doc << "\n";
  }
  out << "\nflags:\n";
  std::size_t width = std::string("--help").size();
  auto label = [](const Flag& flag) {
    return flag.valueName.empty() ? flag.name : flag.name + " " + flag.valueName;
  };
  for (const Flag& flag : flags_) width = std::max(width, label(flag).size());
  for (const Flag& flag : flags_) {
    const std::string head = label(flag);
    out << "  " << head << std::string(width - head.size() + 2, ' ') << flag.doc << "\n";
  }
  out << "  --help" << std::string(width - 6 + 2, ' ') << "show this help\n";
}

}  // namespace mcx::cli
