#include "util/bits.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace mcx {

namespace {
constexpr std::size_t wordIndex(std::size_t i) { return i / DynBits::kWordBits; }
constexpr DynBits::Word wordMask(std::size_t i) {
  return DynBits::Word{1} << (i % DynBits::kWordBits);
}
}  // namespace

DynBits::DynBits(std::size_t n, bool value)
    : n_(n), w_((n + kWordBits - 1) / kWordBits, value ? ~Word{0} : Word{0}) {
  if (value) maskTail();
}

void DynBits::maskTail() {
  const std::size_t rem = n_ % kWordBits;
  if (rem != 0 && !w_.empty()) w_.back() &= (Word{1} << rem) - 1;
}

bool DynBits::test(std::size_t i) const {
  MCX_REQUIRE(i < n_, "DynBits::test out of range");
  return (w_[wordIndex(i)] & wordMask(i)) != 0;
}

void DynBits::set(std::size_t i) {
  MCX_REQUIRE(i < n_, "DynBits::set out of range");
  w_[wordIndex(i)] |= wordMask(i);
}

void DynBits::set(std::size_t i, bool value) { value ? set(i) : reset(i); }

void DynBits::reset(std::size_t i) {
  MCX_REQUIRE(i < n_, "DynBits::reset out of range");
  w_[wordIndex(i)] &= ~wordMask(i);
}

void DynBits::flip(std::size_t i) {
  MCX_REQUIRE(i < n_, "DynBits::flip out of range");
  w_[wordIndex(i)] ^= wordMask(i);
}

void DynBits::setAll() {
  std::fill(w_.begin(), w_.end(), ~Word{0});
  maskTail();
}

void DynBits::resetAll() { std::fill(w_.begin(), w_.end(), Word{0}); }

std::size_t DynBits::count() const {
  std::size_t c = 0;
  for (Word w : w_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool DynBits::any() const {
  for (Word w : w_)
    if (w != 0) return true;
  return false;
}

bool DynBits::all() const { return count() == n_; }

std::size_t DynBits::findFirst() const { return findNext(0); }

std::size_t DynBits::findNext(std::size_t from) const {
  if (from >= n_) return n_;
  std::size_t wi = wordIndex(from);
  Word w = w_[wi] & (~Word{0} << (from % kWordBits));
  while (true) {
    if (w != 0) {
      const std::size_t i = wi * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
      return i < n_ ? i : n_;
    }
    if (++wi >= w_.size()) return n_;
    w = w_[wi];
  }
}

DynBits& DynBits::operator&=(const DynBits& o) {
  MCX_REQUIRE(n_ == o.n_, "DynBits size mismatch");
  for (std::size_t i = 0; i < w_.size(); ++i) w_[i] &= o.w_[i];
  return *this;
}

DynBits& DynBits::operator|=(const DynBits& o) {
  MCX_REQUIRE(n_ == o.n_, "DynBits size mismatch");
  for (std::size_t i = 0; i < w_.size(); ++i) w_[i] |= o.w_[i];
  return *this;
}

DynBits& DynBits::operator^=(const DynBits& o) {
  MCX_REQUIRE(n_ == o.n_, "DynBits size mismatch");
  for (std::size_t i = 0; i < w_.size(); ++i) w_[i] ^= o.w_[i];
  return *this;
}

DynBits& DynBits::andNot(const DynBits& o) {
  MCX_REQUIRE(n_ == o.n_, "DynBits size mismatch");
  for (std::size_t i = 0; i < w_.size(); ++i) w_[i] &= ~o.w_[i];
  return *this;
}

DynBits DynBits::operator~() const {
  DynBits r(*this);
  for (Word& w : r.w_) w = ~w;
  r.maskTail();
  return r;
}

bool DynBits::operator==(const DynBits& o) const { return n_ == o.n_ && w_ == o.w_; }

bool DynBits::subsetOf(const DynBits& o) const {
  MCX_REQUIRE(n_ == o.n_, "DynBits size mismatch");
  for (std::size_t i = 0; i < w_.size(); ++i)
    if ((w_[i] & ~o.w_[i]) != 0) return false;
  return true;
}

bool DynBits::intersects(const DynBits& o) const {
  MCX_REQUIRE(n_ == o.n_, "DynBits size mismatch");
  for (std::size_t i = 0; i < w_.size(); ++i)
    if ((w_[i] & o.w_[i]) != 0) return true;
  return false;
}

std::string DynBits::toString() const {
  std::string s(n_, '0');
  forEachSet([&](std::size_t i) { s[i] = '1'; });
  return s;
}

int DynBits::compare(const DynBits& o) const {
  if (n_ != o.n_) return n_ < o.n_ ? -1 : 1;
  for (std::size_t i = 0; i < w_.size(); ++i)
    if (w_[i] != o.w_[i]) return w_[i] < o.w_[i] ? -1 : 1;
  return 0;
}

std::size_t DynBits::hash() const {
  std::size_t h = n_ * 0x9e3779b97f4a7c15ull;
  for (Word w : w_) {
    h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace mcx
