#include "util/text_table.hpp"

#include <iomanip>
#include <sstream>

namespace mcx {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::addRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::toString() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) { return os << t.toString(); }

std::string TextTable::toCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::percent(double ratio, int precision) {
  return num(ratio * 100.0, precision) + "%";
}

}  // namespace mcx
