// Error handling primitives shared by all mcx libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace mcx {

/// Base class of all errors thrown by mcx libraries.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when parsing external input (PLA files, SOP expressions) fails.
class ParseError : public Error {
public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void failRequire(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": requirement failed (" + cond + ")" +
                        (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace mcx

/// Precondition check that throws mcx::InvalidArgument (always enabled).
#define MCX_REQUIRE(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) ::mcx::detail::failRequire(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
