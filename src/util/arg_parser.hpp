// Shared command-line parser for the bench driver and the examples.
//
// Every CLI in this repo used to hand-roll the same argv loop (and silently
// ignore unknown flags); ArgParser centralizes it: typed value flags bound
// to variables, boolean switches, value callbacks for list-style flags,
// positional arguments, a generated --help, and hard errors on unknown
// flags or malformed values. Numeric parsing follows util/cli.hpp: full-
// string std::from_chars, so "--samples 12abc" is rejected, not truncated.
#pragma once

#include <charconv>
#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace mcx::cli {

namespace detail {
template <typename T>
T parseFlagNumber(const std::string& flag, const std::string& text) {
  T value{};
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  MCX_REQUIRE(ec == std::errc() && end == text.data() + text.size(),
              flag + ": bad value \"" + text + "\"");
  return value;
}
}  // namespace detail

class ArgParser {
public:
  /// Outcome of a parse() call. Handled means an exit-style flag (--help or
  /// an addAction flag such as --list) ran: the caller should exit 0
  /// without doing its normal work. Error messages have already been
  /// written to the error stream; the caller should exit nonzero.
  enum class Outcome { Ok, Handled, Error };

  ArgParser(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  // --- value flags bound to variables ------------------------------------
  void add(const std::string& name, std::string* target, const std::string& valueName,
           const std::string& doc);
  /// Numeric flag (size_t, uint64_t, double, ...): full-string conversion,
  /// trailing garbage rejected.
  template <typename T>
    requires std::is_arithmetic_v<T>
  void add(const std::string& name, T* target, const std::string& valueName,
           const std::string& doc) {
    addFlag({name, valueName, doc, false,
             [name, target](const std::string& value, std::ostream&) {
               *target = detail::parseFlagNumber<T>(name, value);
             }});
  }
  // Optional-valued variants for callers that must distinguish "flag absent"
  // from "flag set to the default" (e.g. env-variable fallbacks).
  template <typename T>
    requires std::is_arithmetic_v<T>
  void add(const std::string& name, std::optional<T>* target, const std::string& valueName,
           const std::string& doc) {
    addFlag({name, valueName, doc, false,
             [name, target](const std::string& value, std::ostream&) {
               *target = detail::parseFlagNumber<T>(name, value);
             }});
  }
  void add(const std::string& name, std::optional<std::string>* target,
           const std::string& valueName, const std::string& doc);

  /// Boolean switch: presence sets *target to true, no value consumed.
  void addSwitch(const std::string& name, bool* target, const std::string& doc);

  /// Value flag handled by a callback (repeatable flags, custom parsing).
  /// The callback may throw mcx::Error / std::exception: parse() turns it
  /// into an error message on the error stream and returns Error.
  void addCallback(const std::string& name, const std::string& valueName,
                   const std::string& doc, std::function<void(const std::string&)> apply);

  /// Exit-style switch (e.g. --list): the callback writes to the output
  /// stream, then parse() returns Handled immediately.
  void addAction(const std::string& name, const std::string& doc,
                 std::function<void(std::ostream&)> apply);

  /// Positional argument (filled in declaration order). Required positionals
  /// must precede optional ones; a missing required positional is an error.
  void addPositional(const std::string& name, std::string* target, const std::string& doc,
                     bool required = true);

  /// Parse flags (args excludes the program name). --help / -h print the
  /// generated help to @p out and return Handled.
  Outcome parse(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);
  Outcome parse(int argc, char** argv, std::ostream& out, std::ostream& err);

  void printHelp(std::ostream& out) const;

private:
  struct Flag {
    std::string name;
    std::string valueName;  ///< empty for switches
    std::string doc;
    bool exits = false;
    std::function<void(const std::string& value, std::ostream& out)> apply;
  };
  struct Positional {
    std::string name;
    std::string doc;
    bool required = true;
    std::string* target = nullptr;
  };

  void addFlag(Flag flag);
  const Flag* findFlag(const std::string& name) const;
  Outcome fail(std::ostream& err, const std::string& message) const;

  std::string program_;
  std::string summary_;
  std::vector<Flag> flags_;
  std::vector<Positional> positionals_;
};

}  // namespace mcx::cli
