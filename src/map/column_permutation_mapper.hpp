// ColumnPermutationMapper: extension beyond the paper's Algorithm 1.
//
// The crossbar geometry fixes which columns carry which signals only up to a
// renaming of the input variables: input variable v can be routed to any
// input column pair (x_p, !x_p) by the CMOS controller (Fig. 7(b) of the
// paper silently applies such a renaming: its valid mapping lists the input
// columns as x3 x2 x1). This mapper searches over input permutations with
// randomized restarts, running an inner row mapper for each candidate.
#pragma once

#include <memory>

#include "map/hybrid_mapper.hpp"
#include "map/matching.hpp"
#include "util/rng.hpp"

namespace mcx {

struct ColumnPermutationOptions {
  /// Number of randomized permutations tried after the identity.
  std::size_t restarts = 20;
  std::uint64_t seed = 0x5eed;
};

class ColumnPermutationMapper final : public IMapper {
public:
  explicit ColumnPermutationMapper(ColumnPermutationOptions opts = {},
                                   std::shared_ptr<const IMapper> inner = nullptr)
      : opts_(opts),
        inner_(inner ? std::move(inner) : std::make_shared<HybridMapper>()) {}

  std::string name() const override { return "ColPerm+" + inner_->name(); }
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm) const override;

private:
  ColumnPermutationOptions opts_;
  std::shared_ptr<const IMapper> inner_;
};

}  // namespace mcx
