#include "map/redundant_mapper.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace mcx {

CrossbarDims redundantDims(const FunctionMatrix& fm, const RedundantCrossbarSpec& spec) {
  const std::size_t pairs = fm.nin() + spec.spareInputPairs;
  const std::size_t outPairs = fm.nout() + spec.spareOutputPairs;
  return {fm.rows() + spec.spareRows,
          2 * pairs + fm.numConnectionCols() + 2 * outPairs};
}

namespace {

/// Columns of physical input pair p in the wide crossbar.
struct WideGeometry {
  std::size_t pairs;      // physical input pairs
  std::size_t conns;      // connection columns (same as FM)
  std::size_t outPairs;   // physical output pairs

  std::size_t posCol(std::size_t p) const { return p; }
  std::size_t negCol(std::size_t p) const { return pairs + p; }
  std::size_t connCol(std::size_t c) const { return 2 * pairs + c; }
  std::size_t outCol(std::size_t p) const { return 2 * pairs + conns + p; }
  std::size_t outBarCol(std::size_t p) const { return 2 * pairs + conns + outPairs + p; }
};

/// Project the wide CM down to the FM's column space given pair choices.
BitMatrix projectCm(const BitMatrix& wide, const FunctionMatrix& fm, const WideGeometry& geo,
                    const std::vector<std::size_t>& inPair,
                    const std::vector<std::size_t>& outPair) {
  BitMatrix cm(wide.rows(), fm.cols());
  for (std::size_t r = 0; r < wide.rows(); ++r) {
    for (std::size_t v = 0; v < fm.nin(); ++v) {
      if (wide.test(r, geo.posCol(inPair[v]))) cm.set(r, fm.colOfPosLiteral(v));
      if (wide.test(r, geo.negCol(inPair[v]))) cm.set(r, fm.colOfNegLiteral(v));
    }
    for (std::size_t c = 0; c < fm.numConnectionCols(); ++c)
      if (wide.test(r, geo.connCol(c))) cm.set(r, fm.colOfConnection(c));
    for (std::size_t o = 0; o < fm.nout(); ++o) {
      if (wide.test(r, geo.outCol(outPair[o]))) cm.set(r, fm.colOfOutput(o));
      if (wide.test(r, geo.outBarCol(outPair[o]))) cm.set(r, fm.colOfOutputBar(o));
    }
  }
  return cm;
}

/// Pick the @p need least-defective pairs out of @p available, scored by the
/// number of unusable crosspoints in the pair's columns.
std::vector<std::size_t> pickPairs(const BitMatrix& wideCm, std::size_t need,
                                   std::size_t available,
                                   const std::function<std::size_t(std::size_t)>& colA,
                                   const std::function<std::size_t(std::size_t)>& colB) {
  std::vector<std::pair<std::size_t, std::size_t>> scored;  // (defects, pair)
  for (std::size_t p = 0; p < available; ++p) {
    const std::size_t bad = (wideCm.rows() - wideCm.colCount(colA(p))) +
                            (wideCm.rows() - wideCm.colCount(colB(p)));
    scored.emplace_back(bad, p);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::size_t> picked(need);
  for (std::size_t i = 0; i < need; ++i) picked[i] = scored[i].second;
  return picked;
}

}  // namespace

RedundantMappingResult RedundantMapper::map(const FunctionMatrix& fm, const DefectMap& defects,
                                            std::uint64_t seed) const {
  const CrossbarDims dims = redundantDims(fm, spec_);
  MCX_REQUIRE(defects.rows() == dims.rows && defects.cols() == dims.cols,
              "RedundantMapper: defect map has wrong dimensions");

  const BitMatrix wideCm = crossbarMatrix(defects);
  const WideGeometry geo{fm.nin() + spec_.spareInputPairs, fm.numConnectionCols(),
                         fm.nout() + spec_.spareOutputPairs};

  RedundantMappingResult result;
  Rng rng(seed);

  // First attempt: least-defective pairs; further attempts randomize.
  std::vector<std::size_t> inPair = pickPairs(
      wideCm, fm.nin(), geo.pairs, [&](std::size_t p) { return geo.posCol(p); },
      [&](std::size_t p) { return geo.negCol(p); });
  std::vector<std::size_t> outPair = pickPairs(
      wideCm, fm.nout(), geo.outPairs, [&](std::size_t p) { return geo.outCol(p); },
      [&](std::size_t p) { return geo.outBarCol(p); });

  for (std::size_t attempt = 0; attempt <= restarts_; ++attempt) {
    const BitMatrix cm = projectCm(wideCm, fm, geo, inPair, outPair);
    MappingResult rows = inner_->map(fm, cm);
    if (rows.success) {
      result.rows = std::move(rows);
      result.inputPairOfVar = inPair;
      result.outputPairOfOut = outPair;
      result.success = true;
      return result;
    }
    // Re-draw pair choices for the next attempt.
    std::vector<std::size_t> allIn(geo.pairs);
    std::iota(allIn.begin(), allIn.end(), 0u);
    rng.shuffle(allIn);
    inPair.assign(allIn.begin(), allIn.begin() + static_cast<std::ptrdiff_t>(fm.nin()));
    std::vector<std::size_t> allOut(geo.outPairs);
    std::iota(allOut.begin(), allOut.end(), 0u);
    rng.shuffle(allOut);
    outPair.assign(allOut.begin(), allOut.begin() + static_cast<std::ptrdiff_t>(fm.nout()));
  }
  return result;
}

}  // namespace mcx
