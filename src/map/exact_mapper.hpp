// ExactMapper (EA): the paper's exact baseline.
//
// Mapping validity is decided exactly under row permutation. The matching
// matrix is pure 0/1 feasibility, so by default the zero-cost Munkres
// question is answered as a perfect-matching question on the word-parallel
// candidate adjacency with Hopcroft-Karp (O(E sqrt(V)) vs O(n^3)) — same
// success set by construction. The paper's original Munkres formulation
// (reference [21]) stays available behind an option as the runtime baseline
// for the ablation benches.
#pragma once

#include "map/matching.hpp"

namespace mcx {

struct ExactMapperOptions {
  /// Solve with the paper's O(n^3) Munkres assignment instead of the
  /// Hopcroft-Karp feasibility fast path. Identical success set; only the
  /// runtime differs. Used as the ablation baseline.
  bool useMunkres = false;
};

class ExactMapper final : public IMapper {
public:
  explicit ExactMapper(ExactMapperOptions opts = {}) : opts_(opts) {}

  std::string name() const override { return opts_.useMunkres ? "EA-munkres" : "EA"; }
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm) const override;
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm,
                    MappingContext& ctx) const override;

private:
  ExactMapperOptions opts_;
};

}  // namespace mcx
