// ExactMapper (EA): the paper's exact baseline.
//
// Builds the matching matrix over ALL function-matrix rows (minterm and
// output rows alike) against all crossbar rows and solves the assignment
// with Munkres. A zero total cost proves a valid mapping; nonzero cost with
// an exact solver proves none exists under row permutation.
#pragma once

#include "map/matching.hpp"

namespace mcx {

class ExactMapper final : public IMapper {
public:
  std::string name() const override { return "EA"; }
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm) const override;
};

}  // namespace mcx
