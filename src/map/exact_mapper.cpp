#include "map/exact_mapper.hpp"

#include <numeric>

#include "util/error.hpp"

namespace mcx {

MappingResult ExactMapper::map(const FunctionMatrix& fm, const BitMatrix& cm) const {
  MappingContext ctx;  // no registered sample: full adjacency rebuild
  return map(fm, cm, ctx);
}

MappingResult ExactMapper::map(const FunctionMatrix& fm, const BitMatrix& cm,
                               MappingContext& ctx) const {
  MCX_REQUIRE(fm.cols() == cm.cols(), "ExactMapper: column count mismatch");
  MappingResult result;
  if (fm.rows() > cm.rows()) return result;

  if (opts_.useMunkres) {
    // The paper's formulation: zero-cost Munkres assignment on the full
    // matching matrix (the ablation runtime baseline).
    std::vector<std::size_t> fmRows(fm.rows());
    std::iota(fmRows.begin(), fmRows.end(), 0u);
    std::vector<std::size_t> cmRows(cm.rows());
    std::iota(cmRows.begin(), cmRows.end(), 0u);

    const CostMatrix matching = buildMatchingMatrix(fm.bits(), fmRows, cm, cmRows);
    const AssignmentResult assignment = munkresSolve(matching);
    if (assignment.cost != 0) return result;

    result.rowAssignment.assign(assignment.assignment.begin(),
                                assignment.assignment.begin() +
                                    static_cast<std::ptrdiff_t>(fm.rows()));
    result.success = true;
    return result;
  }

  // Feasibility fast path: Hopcroft-Karp on the word-parallel candidate
  // adjacency decides the same perfect-matching question in O(E sqrt(V)).
  const BitMatrix& adjacency = ctx.candidateAdjacency(fm.bits(), cm);
  FeasibleAssignment assignment = solveFeasibleAssignment(adjacency);
  if (!assignment.success) return result;

  result.rowAssignment = std::move(assignment.assignment);
  result.success = true;
  return result;
}

}  // namespace mcx
