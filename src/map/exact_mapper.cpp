#include "map/exact_mapper.hpp"

#include <numeric>

#include "util/error.hpp"

namespace mcx {

MappingResult ExactMapper::map(const FunctionMatrix& fm, const BitMatrix& cm) const {
  MCX_REQUIRE(fm.cols() == cm.cols(), "ExactMapper: column count mismatch");
  MappingResult result;
  if (fm.rows() > cm.rows()) return result;

  std::vector<std::size_t> fmRows(fm.rows());
  std::iota(fmRows.begin(), fmRows.end(), 0u);
  std::vector<std::size_t> cmRows(cm.rows());
  std::iota(cmRows.begin(), cmRows.end(), 0u);

  const CostMatrix matching = buildMatchingMatrix(fm.bits(), fmRows, cm, cmRows);
  const AssignmentResult assignment = munkresSolve(matching);
  if (assignment.cost != 0) return result;

  result.rowAssignment.resize(fm.rows());
  for (std::size_t i = 0; i < fm.rows(); ++i) result.rowAssignment[i] = assignment.assignment[i];
  result.success = true;
  return result;
}

}  // namespace mcx
