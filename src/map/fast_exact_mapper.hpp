// FastExactMapper: exact mapping feasibility via maximum bipartite matching.
//
// The paper's EA proves (in)feasibility with a full Munkres run in O(n^3).
// Feasibility is a perfect-matching question: build the compatibility graph
// between FM rows and CM rows and run Hopcroft-Karp (O(E sqrt(V))). Same
// success rate as EA by construction, typically an order of magnitude
// faster — see the ablation-mappers bench suite.
#pragma once

#include "map/matching.hpp"

namespace mcx {

class FastExactMapper final : public IMapper {
public:
  std::string name() const override { return "EA-fast"; }
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm) const override;
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm,
                    MappingContext& ctx) const override;
};

}  // namespace mcx
