#include "map/column_permutation_mapper.hpp"

#include <numeric>

namespace mcx {

MappingResult ColumnPermutationMapper::map(const FunctionMatrix& fm, const BitMatrix& cm) const {
  std::vector<std::size_t> perm(fm.nin());
  std::iota(perm.begin(), perm.end(), 0u);

  MappingResult best = inner_->map(fm, cm);
  if (best.success) {
    best.inputPermutation = perm;  // identity, recorded for verifyMapping
    return best;
  }

  Rng rng(opts_.seed);
  for (std::size_t attempt = 0; attempt < opts_.restarts; ++attempt) {
    rng.shuffle(perm);
    const FunctionMatrix permuted = fm.withInputPermutation(perm);
    MappingResult r = inner_->map(permuted, cm);
    best.backtracks += r.backtracks;
    if (r.success) {
      r.inputPermutation = perm;
      r.backtracks = best.backtracks;
      return r;
    }
  }
  return best;
}

}  // namespace mcx
