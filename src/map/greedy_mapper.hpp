// GreedyMapper: the weakest baseline for ablation A3 — first-fit placement
// of every FM row (minterm and output rows alike), no backtracking, no
// assignment step. Shows what the hybrid algorithm's two refinements buy.
#pragma once

#include "map/matching.hpp"

namespace mcx {

class GreedyMapper final : public IMapper {
public:
  std::string name() const override { return "Greedy"; }
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm) const override;
};

}  // namespace mcx
