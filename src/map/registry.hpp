// Mapper registry: named mapper presets and JSON option specs.
//
// The string-keyed counterpart of scenario/registry.hpp: every IMapper the
// library ships is constructible from a name ("hba", "ea", "fast-ea", ...)
// or, for non-default options, from a small JSON spec. Together the two
// registries make mapper x scenario x circuit sweeps fully declarative —
// a new experiment is a registration, not a plumbing job.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "map/matching.hpp"
#include "scenario/spec.hpp"

namespace mcx {

struct MapperPreset {
  std::string name;
  std::string summary;
  /// Build the mapper with its default options.
  std::function<std::shared_ptr<const IMapper>()> make;
};

/// All registered presets, in presentation order. Guaranteed to cover every
/// IMapper implementation (hba, ea, fast-ea, greedy, colperm, sat +
/// variants).
const std::vector<MapperPreset>& mapperPresets();

/// Preset lookup by name; nullptr when unknown.
const MapperPreset* findMapperPreset(const std::string& name);

/// Build a mapper from a JSON spec:
///   {"mapper": "hba", "backtracking": false, "sortByCandidates": true}
///   {"mapper": "ea", "munkres": true}
///   {"mapper": "fast-ea"}
///   {"mapper": "greedy"}
///   {"mapper": "colperm", "restarts": 20, "seed": 42, "inner": <spec|name>}
///   {"mapper": "sat", "cubeDepth": 2, "conflictLimit": 10000, "learn": true,
///    "parallelCubes": false}
///   {"preset": "hba-nobt"}                      // preset reference
/// Throws mcx::ParseError on malformed or unknown specs.
std::shared_ptr<const IMapper> mapperFromSpec(const SpecValue& spec);

/// Resolve a mapper string: a preset name ("hba") or, when the string
/// starts with '{', a JSON spec. Throws mcx::ParseError listing the known
/// presets when the name is unknown.
std::shared_ptr<const IMapper> makeMapper(const std::string& nameOrSpec);

}  // namespace mcx
