#include "map/registry.hpp"

#include <cmath>

#include "approx/approx_mapper.hpp"
#include "map/column_permutation_mapper.hpp"
#include "map/exact_mapper.hpp"
#include "map/fast_exact_mapper.hpp"
#include "map/greedy_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "sat/sat_mapper.hpp"
#include "util/error.hpp"

namespace mcx {

namespace {

/// Reject unrecognized spec members (same rationale as the scenario
/// registry: a typo'd option would silently run the default mapper under
/// the wrong label).
void requireOnlyKeys(const SpecValue& spec, std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : spec.members) {
    bool known = false;
    for (const char* name : allowed)
      if (key == name) {
        known = true;
        break;
      }
    if (!known) throw ParseError("mapper spec: unknown member \"" + key + "\"");
  }
}

std::string knownPresetNames() {
  std::string known;
  for (const MapperPreset& p : mapperPresets()) {
    if (!known.empty()) known += ", ";
    known += p.name;
  }
  return known;
}

}  // namespace

const std::vector<MapperPreset>& mapperPresets() {
  static const std::vector<MapperPreset> presets = {
      {"hba", "the paper's hybrid algorithm (Algorithm 1) with backtracking",
       [] { return std::make_shared<HybridMapper>(); }},
      {"hba-nobt", "HBA without phase-1 backtracking (ablation A3)",
       [] {
         HybridMapperOptions opts;
         opts.backtracking = false;
         return std::make_shared<HybridMapper>(opts);
       }},
      {"hba-paper", "HBA with the paper's exact top-to-bottom greedy order",
       [] {
         HybridMapperOptions opts;
         opts.sortByCandidates = false;
         return std::make_shared<HybridMapper>(opts);
       }},
      {"ea", "exact algorithm via the Hopcroft-Karp feasibility fast path",
       [] { return std::make_shared<ExactMapper>(); }},
      {"ea-munkres", "the paper's exact algorithm with the O(n^3) Munkres solver",
       [] {
         ExactMapperOptions opts;
         opts.useMunkres = true;
         return std::make_shared<ExactMapper>(opts);
       }},
      {"fast-ea", "exact feasibility as one maximum bipartite matching",
       [] { return std::make_shared<FastExactMapper>(); }},
      {"greedy", "first-fit baseline: no backtracking, no assignment step",
       [] { return std::make_shared<GreedyMapper>(); }},
      {"colperm", "input-column permutation search around an inner HBA",
       [] { return std::make_shared<ColumnPermutationMapper>(); }},
      {"sat",
       "exact SAT backend (CDCL + cube-and-conquer); spec: {\"mapper\":\"sat\","
       "\"cubeDepth\":2,\"conflictLimit\":10000,\"learn\":true,\"parallelCubes\":false}",
       [] { return std::make_shared<SatMapper>(); }},
      {"approx",
       "graded mapper: exact inner attempt, then sacrifice lowest-weight cubes "
       "within an error budget; spec: {\"mapper\":\"approx\",\"inner\":\"fast-ea\","
       "\"epsilon\":1.0}",
       [] { return std::make_shared<ApproxMapper>(); }},
  };
  return presets;
}

const MapperPreset* findMapperPreset(const std::string& name) {
  for (const MapperPreset& preset : mapperPresets())
    if (preset.name == name) return &preset;
  return nullptr;
}

std::shared_ptr<const IMapper> mapperFromSpec(const SpecValue& spec) {
  if (!spec.isObject()) throw ParseError("mapper spec: expected a JSON object");

  if (const SpecValue* preset = spec.find("preset")) {
    requireOnlyKeys(spec, {"preset"});
    if (preset->kind != SpecValue::Kind::String)
      throw ParseError("mapper spec: \"preset\" must be a string");
    const MapperPreset* found = findMapperPreset(preset->string);
    if (found == nullptr)
      throw ParseError("mapper spec: unknown preset \"" + preset->string + "\"");
    return found->make();
  }

  const std::string mapper = spec.stringOr("mapper", "");
  if (mapper == "hba") {
    requireOnlyKeys(spec, {"mapper", "backtracking", "sortByCandidates"});
    HybridMapperOptions opts;
    opts.backtracking = spec.boolOr("backtracking", opts.backtracking);
    opts.sortByCandidates = spec.boolOr("sortByCandidates", opts.sortByCandidates);
    return std::make_shared<HybridMapper>(opts);
  }
  if (mapper == "ea") {
    requireOnlyKeys(spec, {"mapper", "munkres"});
    ExactMapperOptions opts;
    opts.useMunkres = spec.boolOr("munkres", opts.useMunkres);
    return std::make_shared<ExactMapper>(opts);
  }
  if (mapper == "fast-ea") {
    requireOnlyKeys(spec, {"mapper"});
    return std::make_shared<FastExactMapper>();
  }
  if (mapper == "greedy") {
    requireOnlyKeys(spec, {"mapper"});
    return std::make_shared<GreedyMapper>();
  }
  if (mapper == "sat") {
    requireOnlyKeys(spec, {"mapper", "cubeDepth", "conflictLimit", "learn", "parallelCubes"});
    SatMapperOptions opts;
    const double depth = spec.numberOr("cubeDepth", static_cast<double>(opts.cubeDepth));
    if (!(depth >= 0.0) || depth > 16.0 || depth != std::floor(depth))
      throw ParseError("mapper spec: \"cubeDepth\" must be an integer in [0, 16]");
    opts.cubeDepth = static_cast<std::size_t>(depth);
    const double limit = spec.numberOr("conflictLimit", static_cast<double>(opts.conflictLimit));
    if (!(limit >= 0.0) || limit > 9007199254740992.0 || limit != std::floor(limit))  // 2^53
      throw ParseError("mapper spec: \"conflictLimit\" must be a non-negative integer below 2^53");
    opts.conflictLimit = static_cast<std::uint64_t>(limit);
    opts.learn = spec.boolOr("learn", opts.learn);
    opts.parallelCubes = spec.boolOr("parallelCubes", opts.parallelCubes);
    return std::make_shared<SatMapper>(opts);
  }
  if (mapper == "approx") {
    requireOnlyKeys(spec, {"mapper", "inner", "epsilon"});
    ApproxMapperOptions opts;
    const double epsilon = spec.numberOr("epsilon", opts.epsilon);
    if (!(epsilon >= 0.0) || epsilon > 1.0)
      throw ParseError("mapper spec: \"epsilon\" must be in [0, 1]");
    opts.epsilon = epsilon;
    std::shared_ptr<const IMapper> inner;
    if (const SpecValue* innerSpec = spec.find("inner")) {
      if (innerSpec->kind == SpecValue::Kind::String)
        inner = makeMapper(innerSpec->string);
      else
        inner = mapperFromSpec(*innerSpec);
    }
    return std::make_shared<ApproxMapper>(opts, std::move(inner));
  }
  if (mapper == "colperm") {
    requireOnlyKeys(spec, {"mapper", "restarts", "seed", "inner"});
    ColumnPermutationOptions opts;
    const double restarts = spec.numberOr("restarts", static_cast<double>(opts.restarts));
    if (restarts < 0.0 || restarts > 1e6)
      throw ParseError("mapper spec: \"restarts\" out of range");
    opts.restarts = static_cast<std::size_t>(restarts);
    const double seed = spec.numberOr("seed", static_cast<double>(opts.seed));
    if (seed < 0.0 || seed > 9007199254740992.0)  // 2^53
      throw ParseError("mapper spec: \"seed\" must be an integer below 2^53");
    opts.seed = static_cast<std::uint64_t>(seed);
    std::shared_ptr<const IMapper> inner;
    if (const SpecValue* innerSpec = spec.find("inner")) {
      if (innerSpec->kind == SpecValue::Kind::String)
        inner = makeMapper(innerSpec->string);
      else
        inner = mapperFromSpec(*innerSpec);
    }
    return std::make_shared<ColumnPermutationMapper>(opts, std::move(inner));
  }
  throw ParseError("mapper spec: unknown mapper \"" + mapper + "\"");
}

std::shared_ptr<const IMapper> makeMapper(const std::string& nameOrSpec) {
  std::size_t first = 0;
  while (first < nameOrSpec.size() &&
         (nameOrSpec[first] == ' ' || nameOrSpec[first] == '\t' || nameOrSpec[first] == '\n'))
    ++first;
  if (first < nameOrSpec.size() && nameOrSpec[first] == '{')
    return mapperFromSpec(parseSpec(nameOrSpec));

  const MapperPreset* preset = findMapperPreset(nameOrSpec);
  if (preset == nullptr)
    throw ParseError("unknown mapper \"" + nameOrSpec + "\" (known presets: " +
                     knownPresetNames() + "; or pass a JSON spec)");
  return preset->make();
}

}  // namespace mcx
