#include "map/greedy_mapper.hpp"

#include "util/error.hpp"

namespace mcx {

MappingResult GreedyMapper::map(const FunctionMatrix& fm, const BitMatrix& cm) const {
  MCX_REQUIRE(fm.cols() == cm.cols(), "GreedyMapper: column count mismatch");
  MappingResult result;
  if (fm.rows() > cm.rows()) return result;

  constexpr std::size_t kNone = MappingResult::kUnassigned;
  std::vector<std::size_t> fmToCm(fm.rows(), kNone);
  std::vector<bool> taken(cm.rows(), false);
  for (std::size_t i = 0; i < fm.rows(); ++i) {
    bool placed = false;
    for (std::size_t t = 0; t < cm.rows(); ++t) {
      if (taken[t]) continue;
      if (rowMatches(fm.bits(), i, cm, t)) {
        fmToCm[i] = t;
        taken[t] = true;
        placed = true;
        break;
      }
    }
    if (!placed) return result;
  }
  result.rowAssignment = std::move(fmToCm);
  result.success = true;
  return result;
}

}  // namespace mcx
