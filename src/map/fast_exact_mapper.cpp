#include "map/fast_exact_mapper.hpp"

#include "assign/hopcroft_karp.hpp"
#include "util/error.hpp"

namespace mcx {

MappingResult FastExactMapper::map(const FunctionMatrix& fm, const BitMatrix& cm) const {
  MCX_REQUIRE(fm.cols() == cm.cols(), "FastExactMapper: column count mismatch");
  MappingResult result;
  if (fm.rows() > cm.rows()) return result;

  BipartiteGraph graph(fm.rows(), cm.rows());
  for (std::size_t r = 0; r < fm.rows(); ++r)
    for (std::size_t h = 0; h < cm.rows(); ++h)
      if (rowMatches(fm.bits(), r, cm, h)) graph.addEdge(r, h);

  const MatchingResult matching = hopcroftKarp(graph);
  if (!matching.perfectForLeft(fm.rows())) return result;

  result.rowAssignment.resize(fm.rows());
  for (std::size_t r = 0; r < fm.rows(); ++r) result.rowAssignment[r] = matching.matchOfLeft[r];
  result.success = true;
  return result;
}

}  // namespace mcx
