#include "map/fast_exact_mapper.hpp"

#include "util/error.hpp"

namespace mcx {

MappingResult FastExactMapper::map(const FunctionMatrix& fm, const BitMatrix& cm) const {
  MappingContext ctx;  // no registered sample: full adjacency rebuild
  return map(fm, cm, ctx);
}

MappingResult FastExactMapper::map(const FunctionMatrix& fm, const BitMatrix& cm,
                                   MappingContext& ctx) const {
  MCX_REQUIRE(fm.cols() == cm.cols(), "FastExactMapper: column count mismatch");
  MappingResult result;
  if (fm.rows() > cm.rows()) return result;

  // Hopcroft-Karp runs directly on the bit adjacency; no per-edge adjacency
  // lists are materialized.
  const BitMatrix& adjacency = ctx.candidateAdjacency(fm.bits(), cm);
  FeasibleAssignment assignment = solveFeasibleAssignment(adjacency);
  if (!assignment.success) return result;

  result.rowAssignment = std::move(assignment.assignment);
  result.success = true;
  return result;
}

}  // namespace mcx
