#include "map/matching.hpp"

#include <algorithm>
#include <bit>

#include "assign/hopcroft_karp.hpp"
#include "util/error.hpp"

namespace mcx {

bool rowMatches(const BitMatrix& fm, std::size_t fmRow, const BitMatrix& cm, std::size_t cmRow) {
  return fm.rowSubsetOf(fmRow, cm, cmRow);
}

BitMatrix buildCandidateAdjacency(const BitMatrix& fm, const BitMatrix& cm) {
  BitMatrix adjacency;
  buildCandidateAdjacencyInto(fm, cm, adjacency);
  return adjacency;
}

void buildCandidateAdjacencyInto(const BitMatrix& fm, const BitMatrix& cm, BitMatrix& out) {
  MCX_REQUIRE(fm.cols() == cm.cols(), "buildCandidateAdjacency: column mismatch");
  // Zero-column rows are subsets of everything (rowMatches is trivially
  // true), so the degenerate adjacency is all-ones, not all-zeros.
  if (fm.cols() == 0) {
    out.reshape(fm.rows(), cm.rows(), true);
    return;
  }
  out.reshape(fm.rows(), cm.rows());
  if (fm.rows() == 0 || cm.rows() == 0) return;

  // Hot inner loop of every mapper: raw row words with a hoisted stride and
  // a branchless fit test (the ~50/50 fit rate makes a branch mispredict
  // per pair), accumulating 64 results into each output word.
  using Word = BitMatrix::Word;
  const std::size_t words = fm.rowWords(0).size();
  const Word* cmBase = cm.rowWords(0).data();
  const std::size_t n = cm.rows();
  for (std::size_t i = 0; i < fm.rows(); ++i) {
    const Word* a = fm.rowWords(i).data();
    Word* dst = out.rowWords(i).data();
    const Word* b = cmBase;
    for (std::size_t j0 = 0; j0 < n; j0 += BitMatrix::kWordBits) {
      const std::size_t blockEnd = std::min(n, j0 + BitMatrix::kWordBits);
      Word acc = 0;
      if (words == 1) {
        const Word aw = a[0];
        for (std::size_t j = j0; j < blockEnd; ++j, b += 1)
          acc |= static_cast<Word>((aw & ~b[0]) == 0) << (j - j0);
      } else {
        for (std::size_t j = j0; j < blockEnd; ++j, b += words) {
          Word miss = 0;
          for (std::size_t w = 0; w < words; ++w) miss |= a[w] & ~b[w];
          acc |= static_cast<Word>(miss == 0) << (j - j0);
        }
      }
      dst[j0 / BitMatrix::kWordBits] = acc;
    }
  }
}

BitMatrix buildCandidateAdjacency(const BitMatrix& fm, const std::vector<std::size_t>& fmRows,
                                  const BitMatrix& cm, const std::vector<std::size_t>& cmRows) {
  MCX_REQUIRE(fm.cols() == cm.cols(), "buildCandidateAdjacency: column mismatch");
  for (const std::size_t r : fmRows)
    MCX_REQUIRE(r < fm.rows(), "buildCandidateAdjacency: FM row out of range");
  for (const std::size_t r : cmRows)
    MCX_REQUIRE(r < cm.rows(), "buildCandidateAdjacency: CM row out of range");
  if (fm.cols() == 0) return BitMatrix(fmRows.size(), cmRows.size(), true);
  BitMatrix adjacency(fmRows.size(), cmRows.size());
  if (fmRows.empty() || cmRows.empty()) return adjacency;

  // Same word-parallel fit test as the full overload (this one sits on the
  // per-sample path of the Munkres mappers), with the row indirection
  // resolved to raw word pointers up front.
  using Word = BitMatrix::Word;
  const std::size_t words = fm.rowWords(0).size();
  const Word* const fmBase = fm.rowWords(0).data();
  const Word* const cmBase = cm.rowWords(0).data();
  const std::size_t n = cmRows.size();
  for (std::size_t i = 0; i < fmRows.size(); ++i) {
    const Word* a = fmBase + fmRows[i] * words;
    Word* dst = adjacency.rowWords(i).data();
    for (std::size_t j0 = 0; j0 < n; j0 += BitMatrix::kWordBits) {
      const std::size_t blockEnd = std::min(n, j0 + BitMatrix::kWordBits);
      Word acc = 0;
      for (std::size_t j = j0; j < blockEnd; ++j) {
        const Word* b = cmBase + cmRows[j] * words;
        Word miss = 0;
        for (std::size_t w = 0; w < words; ++w) miss |= a[w] & ~b[w];
        acc |= static_cast<Word>(miss == 0) << (j - j0);
      }
      dst[j0 / BitMatrix::kWordBits] = acc;
    }
  }
  return adjacency;
}

namespace {

// FNV-1a over the matrix words. An (address, dims) cache key alone would
// silently serve a stale column index when a caller destroys one FM and the
// next lands at the same address with the same shape (allocator reuse); an
// O(words) content hash per bind closes that hole at a cost far below the
// adjacency build it guards.
std::uint64_t hashWords(const BitMatrix& m) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (const BitMatrix::Word w : m.rowWords(r)) {
      h ^= w;
      h *= 1099511628211ULL;
    }
  return h;
}

}  // namespace

void MappingContext::bindFm(const BitMatrix& fm) {
  const std::uint64_t hash = hashWords(fm);
  if (fmKey_ == &fm && fmRowsKey_ == fm.rows() && fmColsKey_ == fm.cols() &&
      fmHashKey_ == hash)
    return;
  fmKey_ = &fm;
  fmRowsKey_ = fm.rows();
  fmColsKey_ = fm.cols();
  fmHashKey_ = hash;
  fmOnes_ = 0;
  fmRowEmpty_.assign(fm.rows(), 0);
  // CSR column -> FM rows index: counting pass, prefix sums, fill pass.
  std::vector<std::uint32_t> counts(fm.cols() + 1, 0);
  for (std::size_t i = 0; i < fm.rows(); ++i) {
    const auto row = fm.rowWords(i);
    std::size_t ones = 0;
    for (std::size_t w = 0; w < row.size(); ++w) {
      BitMatrix::Word bits = row[w];
      ones += static_cast<std::size_t>(std::popcount(bits));
      while (bits != 0) {
        const std::size_t c = w * BitMatrix::kWordBits +
                              static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        ++counts[c + 1];
      }
    }
    fmOnes_ += ones;
    fmRowEmpty_[i] = ones == 0 ? 1 : 0;
  }
  for (std::size_t c = 0; c < fm.cols(); ++c) counts[c + 1] += counts[c];
  colOffsets_ = counts;
  colRows_.assign(fmOnes_, 0);
  for (std::size_t i = 0; i < fm.rows(); ++i) {
    const auto row = fm.rowWords(i);
    for (std::size_t w = 0; w < row.size(); ++w) {
      BitMatrix::Word bits = row[w];
      while (bits != 0) {
        const std::size_t c = w * BitMatrix::kWordBits +
                              static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        colRows_[counts[c]++] = static_cast<std::uint32_t>(i);
      }
    }
  }
}

const BitMatrix& MappingContext::candidateAdjacency(const BitMatrix& fm, const BitMatrix& cm) {
  const bool sampleUsable = defects_ != nullptr && dirty_ != nullptr && !dirty_->all &&
                            cm.rows() == defects_->rows() && cm.cols() == defects_->cols() &&
                            fm.cols() == cm.cols() && fm.rows() > 0 && cm.rows() > 0;
  if (!sampleUsable) {
    buildCandidateAdjacencyInto(fm, cm, adjacency_);
    return adjacency_;
  }
  bindFm(fm);

  using Word = BitMatrix::Word;
  // Transpose the stuck-open matrix so openT_ row c is "which CM rows have
  // an open defect at column c", laid out over the adjacency's word space.
  openT_.assignTransposed(defects_->openBits());

  adjacency_.reshape(fm.rows(), cm.rows());
  Word* const base = adjacency_.rowWords(0).data();
  const std::size_t stride = adjacency_.rowWords(0).size();
  const Word tailMask = BitMatrix::tailMask(cm.rows());
  const Word* const openTBase = openT_.rows() > 0 ? openT_.rowWords(0).data() : nullptr;

  // FM row i keeps exactly the CM rows with no open defect in any of i's
  // required columns: complement of the union of those columns' masks.
  // (An all-zero FM row unions nothing and keeps every CM row — correct,
  // it fits anything.)
  unionScratch_.assign(stride, 0);
  Word* const u = unionScratch_.data();
  for (std::size_t i = 0; i < fm.rows(); ++i) {
    for (std::size_t w = 0; w < stride; ++w) u[w] = 0;
    const auto row = fm.rowWords(i);
    for (std::size_t w = 0; w < row.size(); ++w) {
      Word bits = row[w];
      while (bits != 0) {
        const std::size_t c = w * BitMatrix::kWordBits +
                              static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const Word* mask = openTBase + c * stride;
        for (std::size_t w2 = 0; w2 < stride; ++w2) u[w2] |= mask[w2];
      }
    }
    Word* dst = base + i * stride;
    for (std::size_t w2 = 0; w2 < stride; ++w2) dst[w2] = ~u[w2];
    dst[stride - 1] &= tailMask;
  }

  // Stuck-closed poisoning on top. A poisoned CM row is all-zero in the CM
  // (only all-zero FM rows still fit it); a poisoned CM column zeroes bit c
  // of every CM row, so every FM row requiring c loses all candidates.
  if (dirty_->stuckClosed > 0) {
    poisonRowMask_.assign(stride, 0);
    poisonColMask_.assign(defects_->closedBits().rowWords(0).size(), 0);
    for (const std::size_t j : dirty_->rows) {
      const auto closed = defects_->closedBits().rowWords(j);
      bool poisoned = false;
      for (std::size_t w = 0; w < closed.size(); ++w) {
        poisonColMask_[w] |= closed[w];
        poisoned = poisoned || closed[w] != 0;
      }
      if (poisoned)
        poisonRowMask_[j / BitMatrix::kWordBits] |= Word{1} << (j % BitMatrix::kWordBits);
    }
    for (std::size_t i = 0; i < fm.rows(); ++i) {
      if (fmRowEmpty_[i] != 0) continue;
      Word* dst = base + i * stride;
      for (std::size_t w = 0; w < stride; ++w) dst[w] &= ~poisonRowMask_[w];
    }
    for (std::size_t w = 0; w < poisonColMask_.size(); ++w) {
      Word bits = poisonColMask_[w];
      while (bits != 0) {
        const std::size_t c = w * BitMatrix::kWordBits +
                              static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        for (std::size_t k = colOffsets_[c]; k < colOffsets_[c + 1]; ++k) {
          Word* row = base + colRows_[k] * stride;
          for (std::size_t w2 = 0; w2 < stride; ++w2) row[w2] = 0;
        }
      }
    }
  }
  return adjacency_;
}

CostMatrix buildMatchingMatrix(const BitMatrix& fm, const std::vector<std::size_t>& fmRows,
                               const BitMatrix& cm, const std::vector<std::size_t>& cmRows) {
  return buildMatchingMatrix(buildCandidateAdjacency(fm, fmRows, cm, cmRows));
}

CostMatrix buildMatchingMatrix(const BitMatrix& adjacency) {
  CostMatrix cost(adjacency.rows(), adjacency.cols(), 1);
  for (std::size_t i = 0; i < adjacency.rows(); ++i)
    for (std::size_t j = 0; j < adjacency.cols(); ++j)
      if (adjacency.test(i, j)) cost.at(i, j) = 0;
  return cost;
}

FeasibleAssignment solveFeasibleAssignment(const BitMatrix& adjacency) {
  FeasibleAssignment result;
  if (adjacency.rows() > adjacency.cols()) return result;
  if (adjacency.rows() == 0) {
    result.success = true;
    return result;
  }
  // Degree early exit: a row with no candidate can never be matched.
  for (std::size_t i = 0; i < adjacency.rows(); ++i)
    if (adjacency.rowCount(i) == 0) return result;

  const MatchingResult matching = hopcroftKarp(adjacency);
  if (!matching.perfectForLeft(adjacency.rows())) return result;
  result.success = true;
  result.assignment = matching.matchOfLeft;
  return result;
}

bool verifyMapping(const FunctionMatrix& fm, const BitMatrix& cm, const MappingResult& result) {
  if (!result.success) return false;
  if (result.rowAssignment.size() != fm.rows()) return false;
  // Distinctness via a CM-row bitmask (no sort, no per-call allocation of
  // fm.rows() indices — this runs once per successful Monte Carlo sample).
  using Word = BitMatrix::Word;
  std::vector<Word> used((cm.rows() + BitMatrix::kWordBits - 1) / BitMatrix::kWordBits, 0);
  for (const std::size_t cmRow : result.rowAssignment) {
    if (cmRow >= cm.rows()) return false;
    Word& word = used[cmRow / BitMatrix::kWordBits];
    const Word mask = Word{1} << (cmRow % BitMatrix::kWordBits);
    if ((word & mask) != 0) return false;
    word |= mask;
  }

  const FunctionMatrix* effective = &fm;
  FunctionMatrix permuted;
  if (!result.inputPermutation.empty()) {
    permuted = fm.withInputPermutation(result.inputPermutation);
    effective = &permuted;
  }
  for (std::size_t r = 0; r < effective->rows(); ++r) {
    if (!rowMatches(effective->bits(), r, cm, result.rowAssignment[r])) return false;
  }
  return true;
}

bool verifyPartialMapping(const FunctionMatrix& fm, const BitMatrix& cm,
                          const MappingResult& result) {
  if (result.rowAssignment.size() != fm.rows()) return false;
  if (!result.inputPermutation.empty()) return false;  // approx mappers never permute
  // droppedRows must be exactly the unassigned rows, strictly ascending.
  std::size_t nextDrop = 0;
  using Word = BitMatrix::Word;
  std::vector<Word> used((cm.rows() + BitMatrix::kWordBits - 1) / BitMatrix::kWordBits, 0);
  for (std::size_t r = 0; r < fm.rows(); ++r) {
    const std::size_t cmRow = result.rowAssignment[r];
    if (cmRow == MappingResult::kUnassigned) {
      if (nextDrop >= result.droppedRows.size() || result.droppedRows[nextDrop] != r)
        return false;
      ++nextDrop;
      continue;
    }
    if (cmRow >= cm.rows()) return false;
    Word& word = used[cmRow / BitMatrix::kWordBits];
    const Word mask = Word{1} << (cmRow % BitMatrix::kWordBits);
    if ((word & mask) != 0) return false;
    word |= mask;
    if (!rowMatches(fm.bits(), r, cm, cmRow)) return false;
  }
  return nextDrop == result.droppedRows.size();
}

}  // namespace mcx
