#include "map/matching.hpp"

#include <algorithm>

#include "assign/hopcroft_karp.hpp"
#include "util/error.hpp"

namespace mcx {

bool rowMatches(const BitMatrix& fm, std::size_t fmRow, const BitMatrix& cm, std::size_t cmRow) {
  return fm.rowSubsetOf(fmRow, cm, cmRow);
}

BitMatrix buildCandidateAdjacency(const BitMatrix& fm, const BitMatrix& cm) {
  MCX_REQUIRE(fm.cols() == cm.cols(), "buildCandidateAdjacency: column mismatch");
  // Zero-column rows are subsets of everything (rowMatches is trivially
  // true), so the degenerate adjacency is all-ones, not all-zeros.
  if (fm.cols() == 0) return BitMatrix(fm.rows(), cm.rows(), true);
  BitMatrix adjacency(fm.rows(), cm.rows());
  if (fm.rows() == 0 || cm.rows() == 0) return adjacency;

  // Hot inner loop of every mapper: raw row words with a hoisted stride and
  // a branchless fit test (the ~50/50 fit rate makes a branch mispredict
  // per pair), accumulating 64 results into each output word.
  using Word = BitMatrix::Word;
  const std::size_t words = fm.rowWords(0).size();
  const Word* cmBase = cm.rowWords(0).data();
  const std::size_t n = cm.rows();
  for (std::size_t i = 0; i < fm.rows(); ++i) {
    const Word* a = fm.rowWords(i).data();
    Word* out = adjacency.rowWords(i).data();
    const Word* b = cmBase;
    for (std::size_t j0 = 0; j0 < n; j0 += BitMatrix::kWordBits) {
      const std::size_t blockEnd = std::min(n, j0 + BitMatrix::kWordBits);
      Word acc = 0;
      if (words == 1) {
        const Word aw = a[0];
        for (std::size_t j = j0; j < blockEnd; ++j, b += 1)
          acc |= static_cast<Word>((aw & ~b[0]) == 0) << (j - j0);
      } else {
        for (std::size_t j = j0; j < blockEnd; ++j, b += words) {
          Word miss = 0;
          for (std::size_t w = 0; w < words; ++w) miss |= a[w] & ~b[w];
          acc |= static_cast<Word>(miss == 0) << (j - j0);
        }
      }
      out[j0 / BitMatrix::kWordBits] = acc;
    }
  }
  return adjacency;
}

BitMatrix buildCandidateAdjacency(const BitMatrix& fm, const std::vector<std::size_t>& fmRows,
                                  const BitMatrix& cm, const std::vector<std::size_t>& cmRows) {
  BitMatrix adjacency(fmRows.size(), cmRows.size());
  for (std::size_t i = 0; i < fmRows.size(); ++i)
    for (std::size_t j = 0; j < cmRows.size(); ++j)
      if (rowMatches(fm, fmRows[i], cm, cmRows[j])) adjacency.set(i, j);
  return adjacency;
}

CostMatrix buildMatchingMatrix(const BitMatrix& fm, const std::vector<std::size_t>& fmRows,
                               const BitMatrix& cm, const std::vector<std::size_t>& cmRows) {
  return buildMatchingMatrix(buildCandidateAdjacency(fm, fmRows, cm, cmRows));
}

CostMatrix buildMatchingMatrix(const BitMatrix& adjacency) {
  CostMatrix cost(adjacency.rows(), adjacency.cols(), 1);
  for (std::size_t i = 0; i < adjacency.rows(); ++i)
    for (std::size_t j = 0; j < adjacency.cols(); ++j)
      if (adjacency.test(i, j)) cost.at(i, j) = 0;
  return cost;
}

FeasibleAssignment solveFeasibleAssignment(const BitMatrix& adjacency) {
  FeasibleAssignment result;
  if (adjacency.rows() > adjacency.cols()) return result;
  if (adjacency.rows() == 0) {
    result.success = true;
    return result;
  }
  // Degree early exit: a row with no candidate can never be matched.
  for (std::size_t i = 0; i < adjacency.rows(); ++i)
    if (adjacency.rowCount(i) == 0) return result;

  const MatchingResult matching = hopcroftKarp(adjacency);
  if (!matching.perfectForLeft(adjacency.rows())) return result;
  result.success = true;
  result.assignment = matching.matchOfLeft;
  return result;
}

bool verifyMapping(const FunctionMatrix& fm, const BitMatrix& cm, const MappingResult& result) {
  if (!result.success) return false;
  if (result.rowAssignment.size() != fm.rows()) return false;
  std::vector<std::size_t> used = result.rowAssignment;
  std::sort(used.begin(), used.end());
  if (std::adjacent_find(used.begin(), used.end()) != used.end()) return false;

  const FunctionMatrix* effective = &fm;
  FunctionMatrix permuted;
  if (!result.inputPermutation.empty()) {
    permuted = fm.withInputPermutation(result.inputPermutation);
    effective = &permuted;
  }
  for (std::size_t r = 0; r < effective->rows(); ++r) {
    const std::size_t cmRow = result.rowAssignment[r];
    if (cmRow >= cm.rows()) return false;
    if (!rowMatches(effective->bits(), r, cm, cmRow)) return false;
  }
  return true;
}

}  // namespace mcx
