#include "map/matching.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcx {

bool rowMatches(const BitMatrix& fm, std::size_t fmRow, const BitMatrix& cm, std::size_t cmRow) {
  return fm.rowSubsetOf(fmRow, cm, cmRow);
}

CostMatrix buildMatchingMatrix(const BitMatrix& fm, const std::vector<std::size_t>& fmRows,
                               const BitMatrix& cm, const std::vector<std::size_t>& cmRows) {
  CostMatrix cost(fmRows.size(), cmRows.size(), 1);
  for (std::size_t i = 0; i < fmRows.size(); ++i)
    for (std::size_t j = 0; j < cmRows.size(); ++j)
      if (rowMatches(fm, fmRows[i], cm, cmRows[j])) cost.at(i, j) = 0;
  return cost;
}

bool verifyMapping(const FunctionMatrix& fm, const BitMatrix& cm, const MappingResult& result) {
  if (!result.success) return false;
  if (result.rowAssignment.size() != fm.rows()) return false;
  std::vector<std::size_t> used = result.rowAssignment;
  std::sort(used.begin(), used.end());
  if (std::adjacent_find(used.begin(), used.end()) != used.end()) return false;

  const FunctionMatrix* effective = &fm;
  FunctionMatrix permuted;
  if (!result.inputPermutation.empty()) {
    permuted = fm.withInputPermutation(result.inputPermutation);
    effective = &permuted;
  }
  for (std::size_t r = 0; r < effective->rows(); ++r) {
    const std::size_t cmRow = result.rowAssignment[r];
    if (cmRow >= cm.rows()) return false;
    if (!rowMatches(effective->bits(), r, cm, cmRow)) return false;
  }
  return true;
}

}  // namespace mcx
