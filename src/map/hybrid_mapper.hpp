// HybridMapper (HBA): the paper's Algorithm 1.
//
// Phase 1 — heuristic minterm matching: FMm rows are matched to CM rows
// greedily top-to-bottom. When a row cannot be placed on any unmatched CM
// row, one-level backtracking runs: for each already-matched CM row (top to
// bottom) that could host the new FM row, try to relocate its current owner
// to some unmatched CM row; on success swap the assignments.
//
// Phase 2 — exact output assignment: the matching matrix of the output rows
// (FMo) against the remaining unmatched CM rows (CMu) is solved with
// Munkres; the mapping is valid iff a zero-cost assignment exists (a single
// defect can discard a whole output, hence the exact method here).
#pragma once

#include "map/matching.hpp"

namespace mcx {

struct HybridMapperOptions {
  /// Disable phase-1 backtracking (ablation A3).
  bool backtracking = true;
  /// Place most-constrained minterm rows (fewest candidate CM rows) first in
  /// phase 1 (stable, so equal-degree rows keep the paper's top-to-bottom
  /// order); if that order dead-ends, the paper's top-to-bottom order is
  /// retried, so the success set is the union of both orders. Disable to
  /// reproduce the paper's exact single-order greedy.
  bool sortByCandidates = true;
};

class HybridMapper final : public IMapper {
public:
  explicit HybridMapper(HybridMapperOptions opts = {}) : opts_(opts) {}

  std::string name() const override { return opts_.backtracking ? "HBA" : "HBA-nobt"; }
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm) const override;
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm,
                    MappingContext& ctx) const override;

private:
  HybridMapperOptions opts_;
};

}  // namespace mcx
