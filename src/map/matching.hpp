// Row matching between the function matrix (FM) and the crossbar matrix
// (CM), plus the mapper interface shared by HBA / EA / ablation variants.
//
// Matching rule (Section IV-B of the paper): an FM row can be placed on a CM
// row iff every 1 of the FM row (required active switch) falls on a 1 of the
// CM row (functional crosspoint). FM 0s (disabled switches) are compatible
// with both functional and stuck-open crosspoints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "assign/munkres.hpp"
#include "util/bit_matrix.hpp"
#include "xbar/defects.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {

class CancelToken;
class ExecutorPool;

/// True iff FM row @p fmRow fits CM row @p cmRow.
bool rowMatches(const BitMatrix& fm, std::size_t fmRow, const BitMatrix& cm, std::size_t cmRow);

/// Candidate adjacency of the matching problem: bit (i, j) set iff FM row i
/// fits CM row j. Computed once per defect sample with the word-parallel
/// rowSubsetOf and shared by every downstream consumer (degree checks,
/// Hopcroft-Karp, cost-matrix construction).
BitMatrix buildCandidateAdjacency(const BitMatrix& fm, const BitMatrix& cm);

/// In-place variant of buildCandidateAdjacency: identical bits, but reuses
/// @p out's allocation (the Monte Carlo scratch-arena entry point).
void buildCandidateAdjacencyInto(const BitMatrix& fm, const BitMatrix& cm, BitMatrix& out);

/// Subset variant: bit (i, j) set iff FM row fmRows[i] fits CM row cmRows[j].
BitMatrix buildCandidateAdjacency(const BitMatrix& fm, const std::vector<std::size_t>& fmRows,
                                  const BitMatrix& cm, const std::vector<std::size_t>& cmRows);

/// Per-experiment scratch for the Monte Carlo mapping hot path.
///
/// The clean crossbar's candidate adjacency is all-ones by construction
/// (every FM row fits a defect-free CM row), so a sample's adjacency only
/// differs where its defects bite. When the engine registers the sample's
/// DefectMap and DirtyRows (setSample), candidateAdjacency() derives each
/// adjacency row directly from the defects: FM row i loses exactly the CM
/// rows that have a stuck-open defect in one of i's required columns, so
/// with the defect matrix transposed once per sample (64x64 bit-block
/// transpose) row i is the complement of the union of its columns' defect
/// masks — O(fmOnes x cmRowWords) word ops per sample instead of the full
/// rebuild's O(fmRows x cmRows x colWords) fit tests. Stuck-closed
/// poisoning is layered on top: a poisoned CM row is erased for every
/// non-empty FM row (word-parallel mask) and a poisoned CM column erases
/// every FM row requiring it (column->rows index built once per FM). Dense
/// models (DirtyRows in markAll mode) and unregistered calls fall back to
/// the full word-parallel rebuild. Both paths produce bit-identical
/// adjacencies — the fast path changes how, never what.
///
/// Contract: the registered DefectMap must be the one @p cm was derived
/// from (crossbarMatrixInto). The per-FM index is cached on an (address,
/// dims, content hash) key, so switching function matrices — even one
/// reallocated at the same address — rebinds automatically; keeping one
/// context per function matrix (as the engine does, one per worker per
/// experiment) just avoids the rebuild churn.
class MappingContext {
public:
  /// Register the sample behind the next candidateAdjacency() call; null
  /// pointers force the full rebuild. The pointees must outlive the call.
  void setSample(const DefectMap* defects, const DirtyRows* dirty) {
    defects_ = defects;
    dirty_ = dirty;
  }

  /// Register the engine's cancellation token and worker pool so
  /// context-aware mappers with internal search (the SAT backend) can poll
  /// deadlines mid-solve and farm sub-problems onto the experiment pool.
  /// Null means no cancellation / no internal parallelism. The pointees
  /// must outlive the mapping calls.
  void setExecution(const CancelToken* cancel, ExecutorPool* pool) {
    cancel_ = cancel;
    pool_ = pool;
  }
  const CancelToken* cancelToken() const { return cancel_; }
  ExecutorPool* pool() const { return pool_; }

  /// Candidate adjacency of (fm, cm) in a reused internal buffer (valid
  /// until the next call on this context).
  const BitMatrix& candidateAdjacency(const BitMatrix& fm, const BitMatrix& cm);

private:
  void bindFm(const BitMatrix& fm);

  const DefectMap* defects_ = nullptr;
  const DirtyRows* dirty_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  ExecutorPool* pool_ = nullptr;

  // Column -> FM rows index (CSR, for poisoned-column erasure) plus the
  // all-zero FM rows, built once per bound function matrix.
  const BitMatrix* fmKey_ = nullptr;
  std::size_t fmRowsKey_ = 0, fmColsKey_ = 0;
  std::uint64_t fmHashKey_ = 0;
  std::size_t fmOnes_ = 0;
  std::vector<std::uint32_t> colOffsets_;
  std::vector<std::uint32_t> colRows_;
  std::vector<unsigned char> fmRowEmpty_;

  // Per-sample scratch: transposed stuck-open matrix, defect-mask union,
  // poison masks, and the adjacency itself.
  BitMatrix openT_;
  std::vector<BitMatrix::Word> unionScratch_;
  std::vector<BitMatrix::Word> poisonRowMask_;
  std::vector<BitMatrix::Word> poisonColMask_;
  BitMatrix adjacency_;
};

/// The paper's "matching matrix" as a Munkres cost matrix: entry 0 where
/// FM row fmRows[i] fits CM row cmRows[j], 1 otherwise. A zero-cost perfect
/// assignment is exactly a valid mapping of the selected rows.
CostMatrix buildMatchingMatrix(const BitMatrix& fm, const std::vector<std::size_t>& fmRows,
                               const BitMatrix& cm, const std::vector<std::size_t>& cmRows);

/// Overload for a precomputed candidate adjacency: cost 0 where the bit is
/// set, 1 otherwise. Lets callers that already hold the adjacency skip the
/// per-pair subset tests.
CostMatrix buildMatchingMatrix(const BitMatrix& adjacency);

/// A solved 0/1 feasibility matching (the unweighted special case of the
/// paper's assignment problem).
struct FeasibleAssignment {
  bool success = false;
  /// assignment[i] = adjacency column matched to row i, when success.
  std::vector<std::size_t> assignment;
};

/// Decide the pure feasibility case via Hopcroft-Karp on the candidate
/// adjacency — O(E sqrt(V)) instead of Munkres' O(n^3). An FM row with zero
/// candidates fails before any solving. Munkres remains the solver for
/// genuinely weighted cost matrices.
FeasibleAssignment solveFeasibleAssignment(const BitMatrix& adjacency);

struct MappingResult {
  static constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();

  bool success = false;
  /// rowAssignment[fmRow] = CM row, for every FM row, when success.
  std::vector<std::size_t> rowAssignment;
  /// Input-pair permutation applied before matching (identity unless the
  /// column-permutation mapper found a non-trivial one).
  std::vector<std::size_t> inputPermutation;
  /// Number of backtracking repairs attempted (HBA statistics).
  std::size_t backtracks = 0;
  /// The mapper was interrupted mid-solve (cancellation/deadline) before
  /// reaching a verdict: success is meaningless and the Monte Carlo engine
  /// leaves the sample unrecorded, so partial counts stay bit-identical to
  /// an uninterrupted rerun's prefix. Only mappers with internal
  /// cancellation polling (the SAT backend) ever set this.
  bool aborted = false;
  /// Exact fraction of care (minterm, output) pairs the realized function
  /// gets wrong, in [0, 1]. Negative means "not measured" — the graded
  /// engine then derives 0 from success and 1 from failure, so every
  /// existing mapper participates in functional-yield counting without
  /// change. Only error-aware mappers (src/approx) set it explicitly.
  double realizedError = -1.0;
  /// FM product rows deliberately left unmapped by an approximate mapper
  /// (ascending). Non-empty only on graded partial mappings: success stays
  /// false (the full FM was NOT realized), rowAssignment holds kUnassigned
  /// at these rows, and realizedError reports the exact functional cost.
  std::vector<std::size_t> droppedRows;

  /// The graded acceptance metric: the explicit realized error when
  /// measured, else the binary verdict (success = 0, failure = 1).
  double realizedErrorOrBinary() const {
    return realizedError >= 0.0 ? realizedError : (success ? 0.0 : 1.0);
  }
};

/// Check a claimed mapping: every required switch must land on a functional
/// crosspoint, and the CM rows must be pairwise distinct.
bool verifyMapping(const FunctionMatrix& fm, const BitMatrix& cm, const MappingResult& result);

/// Check a graded partial mapping (success == false, droppedRows set):
/// every retained FM row must be assigned to a distinct fitting CM row, and
/// the unassigned rows must be exactly the declared droppedRows. The
/// physical half of the approx contract — the functional half (the
/// realizedError value) is checked against truth tables in src/approx.
bool verifyPartialMapping(const FunctionMatrix& fm, const BitMatrix& cm,
                          const MappingResult& result);

/// Interface of all defect-tolerant mappers.
class IMapper {
public:
  virtual ~IMapper() = default;
  virtual std::string name() const = 0;
  /// Map the FM onto the CM (cm.rows() >= fm.rows(), same column count
  /// unless the mapper documents otherwise).
  virtual MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm) const = 0;
  /// Context-aware overload for the Monte Carlo engine. Mappers that can
  /// exploit per-experiment state (the incremental candidate adjacency)
  /// override it; the default ignores the context. Must return exactly what
  /// map(fm, cm) would — the context changes how the adjacency is built,
  /// never its content.
  virtual MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm,
                            MappingContext& ctx) const {
    (void)ctx;
    return map(fm, cm);
  }
};

}  // namespace mcx
