// Row matching between the function matrix (FM) and the crossbar matrix
// (CM), plus the mapper interface shared by HBA / EA / ablation variants.
//
// Matching rule (Section IV-B of the paper): an FM row can be placed on a CM
// row iff every 1 of the FM row (required active switch) falls on a 1 of the
// CM row (functional crosspoint). FM 0s (disabled switches) are compatible
// with both functional and stuck-open crosspoints.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "assign/munkres.hpp"
#include "util/bit_matrix.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {

/// True iff FM row @p fmRow fits CM row @p cmRow.
bool rowMatches(const BitMatrix& fm, std::size_t fmRow, const BitMatrix& cm, std::size_t cmRow);

/// The paper's "matching matrix" as a Munkres cost matrix: entry 0 where
/// FM row fmRows[i] fits CM row cmRows[j], 1 otherwise. A zero-cost perfect
/// assignment is exactly a valid mapping of the selected rows.
CostMatrix buildMatchingMatrix(const BitMatrix& fm, const std::vector<std::size_t>& fmRows,
                               const BitMatrix& cm, const std::vector<std::size_t>& cmRows);

struct MappingResult {
  static constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();

  bool success = false;
  /// rowAssignment[fmRow] = CM row, for every FM row, when success.
  std::vector<std::size_t> rowAssignment;
  /// Input-pair permutation applied before matching (identity unless the
  /// column-permutation mapper found a non-trivial one).
  std::vector<std::size_t> inputPermutation;
  /// Number of backtracking repairs attempted (HBA statistics).
  std::size_t backtracks = 0;
};

/// Check a claimed mapping: every required switch must land on a functional
/// crosspoint, and the CM rows must be pairwise distinct.
bool verifyMapping(const FunctionMatrix& fm, const BitMatrix& cm, const MappingResult& result);

/// Interface of all defect-tolerant mappers.
class IMapper {
public:
  virtual ~IMapper() = default;
  virtual std::string name() const = 0;
  /// Map the FM onto the CM (cm.rows() >= fm.rows(), same column count
  /// unless the mapper documents otherwise).
  virtual MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm) const = 0;
};

}  // namespace mcx
