// Row matching between the function matrix (FM) and the crossbar matrix
// (CM), plus the mapper interface shared by HBA / EA / ablation variants.
//
// Matching rule (Section IV-B of the paper): an FM row can be placed on a CM
// row iff every 1 of the FM row (required active switch) falls on a 1 of the
// CM row (functional crosspoint). FM 0s (disabled switches) are compatible
// with both functional and stuck-open crosspoints.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "assign/munkres.hpp"
#include "util/bit_matrix.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {

/// True iff FM row @p fmRow fits CM row @p cmRow.
bool rowMatches(const BitMatrix& fm, std::size_t fmRow, const BitMatrix& cm, std::size_t cmRow);

/// Candidate adjacency of the matching problem: bit (i, j) set iff FM row i
/// fits CM row j. Computed once per defect sample with the word-parallel
/// rowSubsetOf and shared by every downstream consumer (degree checks,
/// Hopcroft-Karp, cost-matrix construction).
BitMatrix buildCandidateAdjacency(const BitMatrix& fm, const BitMatrix& cm);

/// Subset variant: bit (i, j) set iff FM row fmRows[i] fits CM row cmRows[j].
BitMatrix buildCandidateAdjacency(const BitMatrix& fm, const std::vector<std::size_t>& fmRows,
                                  const BitMatrix& cm, const std::vector<std::size_t>& cmRows);

/// The paper's "matching matrix" as a Munkres cost matrix: entry 0 where
/// FM row fmRows[i] fits CM row cmRows[j], 1 otherwise. A zero-cost perfect
/// assignment is exactly a valid mapping of the selected rows.
CostMatrix buildMatchingMatrix(const BitMatrix& fm, const std::vector<std::size_t>& fmRows,
                               const BitMatrix& cm, const std::vector<std::size_t>& cmRows);

/// Overload for a precomputed candidate adjacency: cost 0 where the bit is
/// set, 1 otherwise. Lets callers that already hold the adjacency skip the
/// per-pair subset tests.
CostMatrix buildMatchingMatrix(const BitMatrix& adjacency);

/// A solved 0/1 feasibility matching (the unweighted special case of the
/// paper's assignment problem).
struct FeasibleAssignment {
  bool success = false;
  /// assignment[i] = adjacency column matched to row i, when success.
  std::vector<std::size_t> assignment;
};

/// Decide the pure feasibility case via Hopcroft-Karp on the candidate
/// adjacency — O(E sqrt(V)) instead of Munkres' O(n^3). An FM row with zero
/// candidates fails before any solving. Munkres remains the solver for
/// genuinely weighted cost matrices.
FeasibleAssignment solveFeasibleAssignment(const BitMatrix& adjacency);

struct MappingResult {
  static constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();

  bool success = false;
  /// rowAssignment[fmRow] = CM row, for every FM row, when success.
  std::vector<std::size_t> rowAssignment;
  /// Input-pair permutation applied before matching (identity unless the
  /// column-permutation mapper found a non-trivial one).
  std::vector<std::size_t> inputPermutation;
  /// Number of backtracking repairs attempted (HBA statistics).
  std::size_t backtracks = 0;
};

/// Check a claimed mapping: every required switch must land on a functional
/// crosspoint, and the CM rows must be pairwise distinct.
bool verifyMapping(const FunctionMatrix& fm, const BitMatrix& cm, const MappingResult& result);

/// Interface of all defect-tolerant mappers.
class IMapper {
public:
  virtual ~IMapper() = default;
  virtual std::string name() const = 0;
  /// Map the FM onto the CM (cm.rows() >= fm.rows(), same column count
  /// unless the mapper documents otherwise).
  virtual MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm) const = 0;
};

}  // namespace mcx
