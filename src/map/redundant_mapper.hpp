// RedundantMapper: yield-oriented mapping with spare lines (the paper's
// Section VI future-work direction, implemented as extension A1).
//
// The physical crossbar is larger than the function matrix: spare rows give
// the row matcher alternatives (this already tolerates stuck-at-closed rows,
// which poison a whole horizontal line), and spare input/output column pairs
// combined with column permutation tolerate stuck-at-closed columns.
//
// The mapper embeds the FM into the wider column space (choosing which
// input pairs / output pairs to use, preferring the least defective ones),
// then delegates row placement to an inner mapper. Randomized restarts
// re-draw the pair choice.
#pragma once

#include <memory>

#include "map/hybrid_mapper.hpp"
#include "map/matching.hpp"
#include "util/rng.hpp"
#include "xbar/defects.hpp"

namespace mcx {

struct RedundantCrossbarSpec {
  std::size_t spareRows = 0;
  std::size_t spareInputPairs = 0;
  std::size_t spareOutputPairs = 0;
};

/// Physical dimensions of a redundant crossbar hosting @p fm.
CrossbarDims redundantDims(const FunctionMatrix& fm, const RedundantCrossbarSpec& spec);

struct RedundantMappingResult {
  MappingResult rows;                       ///< over the embedded FM
  std::vector<std::size_t> inputPairOfVar;  ///< physical input pair per variable
  std::vector<std::size_t> outputPairOfOut; ///< physical output pair per output
  bool success = false;
};

class RedundantMapper {
public:
  explicit RedundantMapper(RedundantCrossbarSpec spec, std::size_t restarts = 8,
                           std::shared_ptr<const IMapper> inner = nullptr)
      : spec_(spec),
        restarts_(restarts),
        inner_(inner ? std::move(inner) : std::make_shared<HybridMapper>()) {}

  /// @p defects must have redundantDims(fm, spec) dimensions.
  RedundantMappingResult map(const FunctionMatrix& fm, const DefectMap& defects,
                             std::uint64_t seed = 0x5eed) const;

private:
  RedundantCrossbarSpec spec_;
  std::size_t restarts_;
  std::shared_ptr<const IMapper> inner_;
};

}  // namespace mcx
