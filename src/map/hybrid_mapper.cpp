#include "map/hybrid_mapper.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <span>

#include "util/error.hpp"

namespace mcx {

namespace {

constexpr std::size_t kNone = MappingResult::kUnassigned;
using Word = BitMatrix::Word;
constexpr std::size_t kWordBits = BitMatrix::kWordBits;

/// Lowest set bit of (candidate row words & mask words), or kNone.
std::size_t firstBit(std::span<const Word> row, const std::vector<Word>& mask) {
  for (std::size_t w = 0; w < row.size(); ++w) {
    const Word bits = row[w] & mask[w];
    if (bits != 0) return w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits));
  }
  return kNone;
}

/// One full HBA attempt (phase 1 greedy + one-level backtracking over
/// @p order, phase 2 Hopcroft-Karp output assignment) on the precomputed
/// candidate adjacency. Backtrack repairs are accumulated into @p result;
/// on success the assignment is stored and result.success set.
bool attemptMapping(const FunctionMatrix& fm, const BitMatrix& adjacency,
                    const std::vector<std::size_t>& order, bool backtracking,
                    MappingResult& result) {
  const std::size_t N = adjacency.cols();

  std::vector<std::size_t> fmToCm(fm.rows(), kNone);
  std::vector<std::size_t> cmOwner(N, kNone);

  // Unmatched CM rows as a bitmask: greedy placement scans candidate-row
  // words AND free words instead of testing CM rows one by one.
  const std::size_t maskWords = (N + kWordBits - 1) / kWordBits;
  std::vector<Word> free(maskWords, ~Word{0});
  if (N % kWordBits != 0) free[maskWords - 1] = (Word{1} << (N % kWordBits)) - 1;
  const auto take = [&](std::size_t t, std::size_t owner) {
    free[t / kWordBits] &= ~(Word{1} << (t % kWordBits));
    cmOwner[t] = owner;
    fmToCm[owner] = t;
  };

  // Phase 1: greedy matching of minterm rows with one-level backtracking.
  for (const std::size_t i : order) {
    const auto row = adjacency.rowWords(i);
    std::size_t t = firstBit(row, free);
    if (t != kNone) {
      take(t, i);
      continue;
    }
    bool placed = false;
    if (backtracking) {
      // Consider matched CM rows top to bottom; try to relocate their owner.
      for (std::size_t w = 0; w < row.size() && !placed; ++w) {
        Word occupied = row[w] & ~free[w];
        while (occupied != 0 && !placed) {
          t = w * kWordBits + static_cast<std::size_t>(std::countr_zero(occupied));
          occupied &= occupied - 1;
          ++result.backtracks;
          const std::size_t j = cmOwner[t];
          const std::size_t u = firstBit(adjacency.rowWords(j), free);
          if (u != kNone) {
            // Relocate j to u, place i on t.
            take(u, j);
            take(t, i);
            placed = true;
          }
        }
      }
    }
    if (!placed) return false;  // no possible row matching in this order
  }

  // Phase 2: exact assignment of output rows onto unmatched CM rows —
  // pure feasibility, so Hopcroft-Karp on the sub-adjacency replaces the
  // zero-cost Munkres run.
  std::vector<std::size_t> fmo(fm.numOutputRows());
  for (std::size_t o = 0; o < fmo.size(); ++o) fmo[o] = fm.rowOfOutput(o);
  std::vector<std::size_t> cmu;
  cmu.reserve(N - order.size());
  for (std::size_t t = 0; t < N; ++t)
    if (cmOwner[t] == kNone) cmu.push_back(t);
  if (cmu.size() < fmo.size()) return false;

  BitMatrix sub(fmo.size(), cmu.size());
  for (std::size_t o = 0; o < fmo.size(); ++o)
    for (std::size_t k = 0; k < cmu.size(); ++k)
      if (adjacency.test(fmo[o], cmu[k])) sub.set(o, k);

  const FeasibleAssignment assignment = solveFeasibleAssignment(sub);
  if (!assignment.success) return false;

  for (std::size_t o = 0; o < fmo.size(); ++o) fmToCm[fmo[o]] = cmu[assignment.assignment[o]];
  result.rowAssignment = std::move(fmToCm);
  result.success = true;
  return true;
}

}  // namespace

MappingResult HybridMapper::map(const FunctionMatrix& fm, const BitMatrix& cm) const {
  MappingContext ctx;  // no registered sample: full adjacency rebuild
  return map(fm, cm, ctx);
}

MappingResult HybridMapper::map(const FunctionMatrix& fm, const BitMatrix& cm,
                                MappingContext& ctx) const {
  MCX_REQUIRE(fm.cols() == cm.cols(), "HybridMapper: column count mismatch");
  MappingResult result;
  if (fm.rows() > cm.rows()) return result;

  const std::size_t P = fm.numProductRows();

  // One adjacency precompute serves the degree check, both phases, and the
  // backtracking probes (O(1) bit tests afterwards); the context rebuilds
  // it incrementally from the sample's dirty rows when it can.
  const BitMatrix& adjacency = ctx.candidateAdjacency(fm.bits(), cm);
  std::vector<std::size_t> candidates(fm.rows());
  for (std::size_t r = 0; r < fm.rows(); ++r) {
    candidates[r] = adjacency.rowCount(r);
    if (candidates[r] == 0) return result;  // unmappable row: fail before solving
  }

  std::vector<std::size_t> order(P);
  std::iota(order.begin(), order.end(), std::size_t{0});

  if (!opts_.sortByCandidates) {
    attemptMapping(fm, adjacency, order, opts_.backtracking, result);
    return result;
  }

  // Most-constrained rows first (ties broken by index, so equal-degree rows
  // keep the paper's top-to-bottom order — same order a stable sort gives,
  // without stable_sort's per-call buffer allocation): they have the fewest
  // escape hatches, and placing them early slashes the backtracking
  // repairs. When this order dead-ends, fall back to the paper's
  // top-to-bottom order — the two greedy orders fail on different
  // instances, so the success set is the union of both and never below the
  // paper's.
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
    return candidates[a] != candidates[b] ? candidates[a] < candidates[b] : a < b;
  });
  if (attemptMapping(fm, adjacency, sorted, opts_.backtracking, result)) return result;
  if (sorted != order) attemptMapping(fm, adjacency, order, opts_.backtracking, result);
  return result;
}

}  // namespace mcx
