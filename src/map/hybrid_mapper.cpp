#include "map/hybrid_mapper.hpp"

#include "util/error.hpp"

namespace mcx {

MappingResult HybridMapper::map(const FunctionMatrix& fm, const BitMatrix& cm) const {
  MCX_REQUIRE(fm.cols() == cm.cols(), "HybridMapper: column count mismatch");
  MappingResult result;
  if (fm.rows() > cm.rows()) return result;

  const std::size_t P = fm.numProductRows();
  const std::size_t N = cm.rows();
  constexpr std::size_t kNone = MappingResult::kUnassigned;

  std::vector<std::size_t> fmToCm(fm.rows(), kNone);
  std::vector<std::size_t> cmOwner(N, kNone);

  // Phase 1: greedy matching of minterm rows with one-level backtracking.
  for (std::size_t i = 0; i < P; ++i) {
    bool placed = false;
    for (std::size_t t = 0; t < N && !placed; ++t) {
      if (cmOwner[t] != kNone) continue;
      if (rowMatches(fm.bits(), i, cm, t)) {
        fmToCm[i] = t;
        cmOwner[t] = i;
        placed = true;
      }
    }
    if (!placed && opts_.backtracking) {
      // Consider matched CM rows top to bottom; try to relocate their owner.
      for (std::size_t t = 0; t < N && !placed; ++t) {
        if (cmOwner[t] == kNone || !rowMatches(fm.bits(), i, cm, t)) continue;
        ++result.backtracks;
        const std::size_t j = cmOwner[t];
        for (std::size_t u = 0; u < N; ++u) {
          if (cmOwner[u] != kNone) continue;
          if (rowMatches(fm.bits(), j, cm, u)) {
            // Relocate j to u, place i on t.
            fmToCm[j] = u;
            cmOwner[u] = j;
            fmToCm[i] = t;
            cmOwner[t] = i;
            placed = true;
            break;
          }
        }
      }
    }
    if (!placed) return result;  // no possible row matching
  }

  // Phase 2: exact assignment of output rows onto unmatched CM rows.
  std::vector<std::size_t> fmo(fm.numOutputRows());
  for (std::size_t o = 0; o < fmo.size(); ++o) fmo[o] = fm.rowOfOutput(o);
  std::vector<std::size_t> cmu;
  cmu.reserve(N - P);
  for (std::size_t t = 0; t < N; ++t)
    if (cmOwner[t] == kNone) cmu.push_back(t);
  if (cmu.size() < fmo.size()) return result;

  const CostMatrix matching = buildMatchingMatrix(fm.bits(), fmo, cm, cmu);
  const AssignmentResult assignment = munkresSolve(matching);
  if (assignment.cost != 0) return result;

  for (std::size_t o = 0; o < fmo.size(); ++o) fmToCm[fmo[o]] = cmu[assignment.assignment[o]];
  result.rowAssignment = std::move(fmToCm);
  result.success = true;
  return result;
}

}  // namespace mcx
