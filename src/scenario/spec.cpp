#include "scenario/spec.hpp"

#include <charconv>

#include "util/error.hpp"

namespace mcx {

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : text_(text) {}

  SpecValue parseDocument() {
    SpecValue v = parseValue();
    skipWhitespace();
    require(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("scenario spec: " + msg + " at offset " + std::to_string(pos_));
  }

  void require(bool cond, const char* msg) const {
    if (!cond) fail(msg);
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skipWhitespace();
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    require(peek() == c, "unexpected character");
    ++pos_;
  }

  bool consumeKeyword(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  SpecValue parseValue() {
    SpecValue v;
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"':
        v.kind = SpecValue::Kind::String;
        v.string = parseString();
        return v;
      case 't':
        require(consumeKeyword("true"), "bad keyword");
        v.kind = SpecValue::Kind::Bool;
        v.boolean = true;
        return v;
      case 'f':
        require(consumeKeyword("false"), "bad keyword");
        v.kind = SpecValue::Kind::Bool;
        v.boolean = false;
        return v;
      case 'n':
        require(consumeKeyword("null"), "bad keyword");
        return v;
      default: return parseNumber();
    }
  }

  // Containers recurse through parseValue; specs are shallow declarations,
  // so a hard depth cap turns adversarial nesting ("[[[[[..." from a
  // malformed service request) into a ParseError long before the parser
  // could exhaust the stack.
  static constexpr std::size_t kMaxDepth = 64;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth) parser.fail("nesting deeper than 64 levels");
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  SpecValue parseObject() {
    const DepthGuard guard(*this);
    SpecValue v;
    v.kind = SpecValue::Kind::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      require(peek() == '"', "object key must be a string");
      std::string key = parseString();
      expect(':');
      v.members.emplace_back(std::move(key), parseValue());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      require(c == ',', "expected ',' or '}' in object");
    }
  }

  SpecValue parseArray() {
    const DepthGuard guard(*this);
    SpecValue v;
    v.kind = SpecValue::Kind::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parseValue());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      require(c == ',', "expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        require(pos_ < text_.size(), "unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: fail("unsupported escape sequence");
        }
      }
      out += c;
    }
    require(pos_ < text_.size(), "unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  // Scan the JSON number grammar explicitly, then convert with
  // std::from_chars: strtod would honor the process locale and accept
  // non-JSON tokens (nan, inf, hex floats, leading '+').
  SpecValue parseNumber() {
    skipWhitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t first = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      require(pos_ > first, "expected a JSON value");
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      digits();
    }
    SpecValue v;
    v.kind = SpecValue::Kind::Number;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v.number);
    require(ec == std::errc() && end == text_.data() + pos_, "bad JSON number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

const SpecValue* SpecValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [name, value] : members)
    if (name == key) return &value;
  return nullptr;
}

double SpecValue::numberOr(const std::string& key, double fallback) const {
  const SpecValue* v = find(key);
  if (v == nullptr) return fallback;
  if (v->kind != Kind::Number)
    throw ParseError("scenario spec: member \"" + key + "\" must be a number");
  return v->number;
}

std::string SpecValue::stringOr(const std::string& key, const std::string& fallback) const {
  const SpecValue* v = find(key);
  if (v == nullptr) return fallback;
  if (v->kind != Kind::String)
    throw ParseError("scenario spec: member \"" + key + "\" must be a string");
  return v->string;
}

bool SpecValue::boolOr(const std::string& key, bool fallback) const {
  const SpecValue* v = find(key);
  if (v == nullptr) return fallback;
  if (v->kind != Kind::Bool)
    throw ParseError("scenario spec: member \"" + key + "\" must be a boolean");
  return v->boolean;
}

SpecValue parseSpec(const std::string& text) { return Parser(text).parseDocument(); }

}  // namespace mcx
