// Pluggable defect-pattern generators (the scenario subsystem).
//
// The paper's yield experiments (Tables II-III) draw every crosspoint
// independently at a flat rate. Real nano-crossbar fabrication also
// produces clustered defects (process particles, Section IV's "random
// discrete" assumption relaxed), line-correlated failures (broken or
// shorted nanowires — the stuck-closed line-poisoning case of
// src/sim/crossbar_sim.cpp applied to whole lines), and radial rate
// gradients (wafer-edge effects). A DefectModel turns any such pattern
// into a DefectMap without the Monte Carlo engine caring which world it is
// sampling from; IidBernoulli reproduces the paper's model bit-identically.
//
// Determinism contract: generate() must consume randomness only from the
// passed Rng, in a draw order that depends solely on (rows, cols) and the
// model's own parameters — never on global state or thread identity. The
// engine pre-splits one RNG stream per sample, so any conforming model
// keeps experiment results bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "xbar/defects.hpp"

namespace mcx {

class DefectModel {
public:
  virtual ~DefectModel() = default;

  /// Short stable identifier of the model family ("iid", "clustered", ...).
  virtual std::string name() const = 0;
  /// Human-readable parameter summary ("iid(open=10%, closed=0%)").
  virtual std::string describe() const = 0;

  /// Fill @p out (reshaped to rows x cols) with a fresh defect pattern.
  virtual void generate(std::size_t rows, std::size_t cols, Rng& rng,
                        DefectMap& out) const = 0;

  /// generate() plus a report of the touched crossbar-matrix rows, the
  /// input of the incremental-adjacency fast path (MappingContext). Same
  /// draw sequence as generate() — the Monte Carlo engine may call either
  /// for a sample without perturbing the stream. The default derives the
  /// dirty set from the finished map with a word-level scan; sparse models
  /// override to report the rows they touched directly.
  virtual void generateTracked(std::size_t rows, std::size_t cols, Rng& rng, DefectMap& out,
                               DirtyRows& dirty) const;

  /// Convenience wrapper over generate() for non-scratch-arena callers.
  DefectMap sample(std::size_t rows, std::size_t cols, Rng& rng) const;
};

/// The paper's model: every crosspoint fails independently at flat
/// stuck-open / stuck-closed rates. Draw-for-draw identical to
/// DefectMap::resample, so experiments routed through the scenario API
/// reproduce the pre-scenario engine exactly.
class IidBernoulli : public DefectModel {
public:
  explicit IidBernoulli(double stuckOpenRate, double stuckClosedRate = 0.0);

  std::string name() const override { return "iid"; }
  std::string describe() const override;
  void generate(std::size_t rows, std::size_t cols, Rng& rng, DefectMap& out) const override;

  double stuckOpenRate() const { return open_; }
  double stuckClosedRate() const { return closed_; }

private:
  double open_;
  double closed_;
};

/// The same i.i.d. per-crosspoint distribution as IidBernoulli, sampled in
/// O(defects) instead of O(crosspoints): one exact Binomial(area, rate) draw
/// fixes the defect count, then each defect lands on a uniformly drawn
/// still-functional crosspoint (rejection on collisions) and picks its type
/// with one conditional draw when both rates are nonzero. Statistically
/// identical to the parent — conditioning an i.i.d. field on its defect
/// count makes the defect sites a uniform distinct sample — but a different
/// random stream, so it is NOT draw-for-draw compatible with the paper's
/// sampler; the legacy path stays the bit-identity regression anchor.
/// Above kDenseRateCutoff the rejection loop stops paying and the model
/// falls back to the parent's dense draw-for-draw sweep.
class SparseIidBernoulli final : public IidBernoulli {
public:
  /// Total defect rate above which the dense sweep is used instead.
  static constexpr double kDenseRateCutoff = 0.25;

  explicit SparseIidBernoulli(double stuckOpenRate, double stuckClosedRate = 0.0);

  std::string name() const override { return "iid-sparse"; }
  std::string describe() const override;
  void generate(std::size_t rows, std::size_t cols, Rng& rng, DefectMap& out) const override;
  void generateTracked(std::size_t rows, std::size_t cols, Rng& rng, DefectMap& out,
                       DirtyRows& dirty) const override;

private:
  void sampleSparse(std::size_t rows, std::size_t cols, Rng& rng, DefectMap& out,
                    DirtyRows* dirty) const;
};

/// Particle-induced clusters: seed points land uniformly (expected
/// clusterDensity * rows * cols of them) and each grows by a random walk
/// whose length is geometric in `spread` (expected cluster size
/// 1 / (1 - spread) visited cells). Each visited crosspoint is stuck-closed
/// with probability stuckClosedShare, else stuck-open; stuck-closed is
/// never downgraded by a later visit.
class ClusteredDefects final : public DefectModel {
public:
  struct Params {
    double clusterDensity = 5e-4;   ///< expected cluster seeds per crosspoint
    double spread = 0.85;           ///< per-step walk continuation probability
    double stuckClosedShare = 0.0;  ///< share of clustered cells stuck-closed
  };

  explicit ClusteredDefects(Params params);

  std::string name() const override { return "clustered"; }
  std::string describe() const override;
  void generate(std::size_t rows, std::size_t cols, Rng& rng, DefectMap& out) const override;

  const Params& params() const { return params_; }

private:
  Params params_;
};

/// Whole-line failures. Each horizontal line independently fails
/// stuck-closed with rowStuckClosedRate — realized as one stuck-closed
/// crosspoint at a uniform column, which poisons the row (and, per the
/// fabric semantics of Section IV-A, the unlucky column too). Each line can
/// instead fail stuck-open (every crosspoint in it stuck-open: the line's
/// switches are all unusable but no poisoning spreads). Vertical lines get
/// the symmetric treatment. Draw order: rows (open then closed), then
/// columns (open then closed).
class LineCorrelated final : public DefectModel {
public:
  struct Params {
    double rowStuckClosedRate = 0.0;
    double colStuckClosedRate = 0.0;
    double rowStuckOpenRate = 0.0;
    double colStuckOpenRate = 0.0;
  };

  explicit LineCorrelated(Params params);

  std::string name() const override { return "lines"; }
  std::string describe() const override;
  void generate(std::size_t rows, std::size_t cols, Rng& rng, DefectMap& out) const override;

  const Params& params() const { return params_; }

private:
  Params params_;
};

/// Wafer-edge gradient: the per-crosspoint defect rate ramps linearly with
/// normalized radial distance from the array center (the farthest corner is
/// distance 1), from centerRate to edgeRate. A stuckClosedShare of defects
/// are stuck-closed. One uniform draw per crosspoint, like IidBernoulli.
class RadialGradient final : public DefectModel {
public:
  struct Params {
    double centerRate = 0.01;
    double edgeRate = 0.20;
    double stuckClosedShare = 0.0;
  };

  explicit RadialGradient(Params params);

  std::string name() const override { return "gradient"; }
  std::string describe() const override;
  void generate(std::size_t rows, std::size_t cols, Rng& rng, DefectMap& out) const override;

  const Params& params() const { return params_; }

private:
  Params params_;
};

/// Union of sub-models: each part generates into a scratch map and the
/// results are overlaid (stuck-closed dominates stuck-open on conflicts).
/// The canonical use is layering an i.i.d. "upset" layer — the transient
/// fault pattern of src/sim/transient_faults frozen for one sample — over a
/// correlated permanent-defect model. Parts draw in order from the same
/// stream, so the composite obeys the determinism contract iff its parts do.
class CompositeModel final : public DefectModel {
public:
  CompositeModel(std::string label,
                 std::vector<std::shared_ptr<const DefectModel>> parts);

  std::string name() const override { return "composite"; }
  std::string describe() const override;
  void generate(std::size_t rows, std::size_t cols, Rng& rng, DefectMap& out) const override;

  const std::vector<std::shared_ptr<const DefectModel>>& parts() const { return parts_; }

private:
  std::string label_;
  std::vector<std::shared_ptr<const DefectModel>> parts_;
};

}  // namespace mcx
