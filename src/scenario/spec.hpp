// Minimal JSON parsing for declarative scenario specs.
//
// The scenario registry and the `mcx_bench scenarios` sweep accept small JSON
// documents ({"model": "clustered", "density": 8e-4, ...}); this is the
// read-side companion of util/json_writer.hpp. Deliberately tiny: objects,
// arrays, strings (with the writer's escape set), numbers, booleans, and
// null — no streaming, no comments, no DOM mutation.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mcx {

struct SpecValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<SpecValue> array;
  /// Object members in document order (specs are small; no hashing needed).
  std::vector<std::pair<std::string, SpecValue>> members;

  bool isObject() const { return kind == Kind::Object; }
  bool isArray() const { return kind == Kind::Array; }

  /// Member lookup (objects only); nullptr when absent.
  const SpecValue* find(const std::string& key) const;

  /// Typed member accessors with fallbacks; throw ParseError when the member
  /// exists but has the wrong type (a silently ignored typo'd spec would
  /// run the wrong scenario).
  double numberOr(const std::string& key, double fallback) const;
  std::string stringOr(const std::string& key, const std::string& fallback) const;
  bool boolOr(const std::string& key, bool fallback) const;
};

/// Parse a complete JSON document; throws mcx::ParseError on malformed
/// input or trailing garbage.
SpecValue parseSpec(const std::string& text);

}  // namespace mcx
