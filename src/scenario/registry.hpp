// Scenario registry: named defect-scenario presets and JSON spec parsing.
//
// A preset is a rate-scalable model family — make(rate) builds the model
// with its overall defect budget set to `rate` (the fraction of crosspoints
// expected to be defective, or the per-line failure probability for the
// line-correlated family). This lets one declarative sweep walk every
// family across a common rate grid. Arbitrary parameterizations come in
// through JSON specs (see modelFromSpec).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "scenario/defect_model.hpp"
#include "scenario/spec.hpp"

namespace mcx {

struct ScenarioPreset {
  std::string name;
  std::string summary;
  /// Build the family's model at overall defect budget @p rate.
  std::function<std::shared_ptr<const DefectModel>(double rate)> make;
};

/// All registered presets, in presentation order. Guaranteed to cover every
/// DefectModel implementation (iid, clustered, lines, gradient, composite).
const std::vector<ScenarioPreset>& scenarioPresets();

/// Preset lookup by name; nullptr when unknown.
const ScenarioPreset* findScenarioPreset(const std::string& name);

/// Build a model from a JSON spec:
///   {"model": "iid",       "open": 0.10, "closed": 0.0}
///   {"model": "iid-sparse", "open": 0.10, "closed": 0.0}   // O(defects) draw
///   {"model": "clustered", "density": 8e-4, "spread": 0.85, "closedShare": 0.1}
///   {"model": "lines",     "rowClosed": 0.05, "colClosed": 0.02,
///                          "rowOpen": 0.0, "colOpen": 0.0}
///   {"model": "gradient",  "center": 0.02, "edge": 0.30, "closedShare": 0.0}
///   {"model": "composite", "label": "...", "parts": [ <spec>, <spec>, ... ]}
///   {"preset": "clustered", "rate": 0.08}          // preset reference
/// Throws mcx::ParseError on malformed or unknown specs.
std::shared_ptr<const DefectModel> modelFromSpec(const SpecValue& spec);

/// Resolve a scenario string: a preset name ("paper-iid", built at
/// @p rate) or, when the string starts with '{', a JSON spec (in which case
/// @p rate is ignored — the spec carries its own parameters).
std::shared_ptr<const DefectModel> makeScenario(const std::string& nameOrSpec,
                                                double rate = 0.10);

/// The defect-rate grid shared by the rate-sweep benches and the scenario
/// runner (previously copy-pasted per bench).
const std::vector<double>& standardRateGrid();

}  // namespace mcx
