#include "scenario/defect_model.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace mcx {

namespace {

std::string percent(double v) {
  std::ostringstream out;
  out << v * 100.0 << "%";
  return out.str();
}

/// Mark a crosspoint defective without ever downgrading stuck-closed (the
/// harsher failure) back to stuck-open.
void mark(DefectMap& map, std::size_t r, std::size_t c, DefectType t) {
  if (map.isStuckClosed(r, c)) return;
  map.setType(r, c, t);
}

}  // namespace

DefectMap DefectModel::sample(std::size_t rows, std::size_t cols, Rng& rng) const {
  DefectMap map;
  generate(rows, cols, rng, map);
  return map;
}

void DefectModel::generateTracked(std::size_t rows, std::size_t cols, Rng& rng,
                                  DefectMap& out, DirtyRows& dirty) const {
  generate(rows, cols, rng, out);
  dirty.scan(out);
}

// ----------------------------------------------------------- IidBernoulli

IidBernoulli::IidBernoulli(double stuckOpenRate, double stuckClosedRate)
    : open_(stuckOpenRate), closed_(stuckClosedRate) {
  MCX_REQUIRE(open_ >= 0.0 && closed_ >= 0.0 && open_ + closed_ <= 1.0,
              "IidBernoulli: bad rates");
}

std::string IidBernoulli::describe() const {
  return "iid(open=" + percent(open_) + ", closed=" + percent(closed_) + ")";
}

void IidBernoulli::generate(std::size_t rows, std::size_t cols, Rng& rng,
                            DefectMap& out) const {
  // Delegate to the paper's sampler: the scenario API must be draw-for-draw
  // identical to the legacy rate-pair path.
  out.resample(rows, cols, open_, closed_, rng);
}

// ---------------------------------------------------- SparseIidBernoulli

SparseIidBernoulli::SparseIidBernoulli(double stuckOpenRate, double stuckClosedRate)
    : IidBernoulli(stuckOpenRate, stuckClosedRate) {}

std::string SparseIidBernoulli::describe() const {
  return "iid-sparse(open=" + percent(stuckOpenRate()) +
         ", closed=" + percent(stuckClosedRate()) + ")";
}

void SparseIidBernoulli::generate(std::size_t rows, std::size_t cols, Rng& rng,
                                  DefectMap& out) const {
  sampleSparse(rows, cols, rng, out, nullptr);
}

void SparseIidBernoulli::generateTracked(std::size_t rows, std::size_t cols, Rng& rng,
                                         DefectMap& out, DirtyRows& dirty) const {
  sampleSparse(rows, cols, rng, out, &dirty);
}

void SparseIidBernoulli::sampleSparse(std::size_t rows, std::size_t cols, Rng& rng,
                                      DefectMap& out, DirtyRows* dirty) const {
  const double total = stuckOpenRate() + stuckClosedRate();
  if (total > kDenseRateCutoff) {
    // Dense regime: the distinct-site rejection loop would redraw too
    // often; the parent's one-draw-per-crosspoint sweep wins.
    out.resample(rows, cols, stuckOpenRate(), stuckClosedRate(), rng);
    if (dirty != nullptr) dirty->scan(out);
    return;
  }
  out.reshape(rows, cols);
  if (dirty != nullptr) {
    dirty->all = false;
    dirty->rows.clear();
    dirty->stuckOpen = dirty->stuckClosed = 0;
  }
  if (rows == 0 || cols == 0 || total <= 0.0) return;

  // Draw order (fixed by rows/cols and the rates alone): one uniform for
  // the defect count, then per defect a (row, column) pair — redrawn while
  // it lands on an already-defective site — and, only when both rates are
  // nonzero, one uniform for the type. Coordinates come from exact 32-bit
  // Lemire reductions, two per raw 64-bit draw (crossbars are far below
  // 2^32 lines; the rejection keeps them exactly uniform).
  MCX_REQUIRE(rows < (std::uint64_t{1} << 32) && cols < (std::uint64_t{1} << 32),
              "SparseIidBernoulli: dimensions exceed the 32-bit sampler");
  const std::uint64_t count = rng.binomial(
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols), total);
  const double closedShare = stuckClosedRate() / total;
  const bool mixed = stuckClosedRate() > 0.0 && stuckOpenRate() > 0.0;

  std::uint64_t buffered = 0;
  unsigned bufferedHalves = 0;
  const auto next32 = [&]() -> std::uint32_t {
    if (bufferedHalves == 0) {
      buffered = rng();
      bufferedHalves = 2;
    }
    const auto v = static_cast<std::uint32_t>(buffered);
    buffered >>= 32;
    --bufferedHalves;
    return v;
  };
  const auto lemire32 = [&](std::uint64_t n, std::uint32_t reject) -> std::size_t {
    for (;;) {
      const std::uint64_t m = static_cast<std::uint64_t>(next32()) * n;
      if (static_cast<std::uint32_t>(m) >= reject) return static_cast<std::size_t>(m >> 32);
    }
  };
  const auto rejectBound = [](std::uint64_t n) {
    return static_cast<std::uint32_t>((std::uint64_t{1} << 32) % n);
  };
  const std::uint32_t rowReject = rejectBound(rows);
  const std::uint32_t colReject = rejectBound(cols);

  // Placement with raw word access (the per-bit accessors' bounds checks
  // and span setup would double the cost of this O(defects) loop).
  using Word = BitMatrix::Word;
  Word* const openBase = out.mutableOpenBits().rowWords(0).data();
  Word* const closedBase = out.mutableClosedBits().rowWords(0).data();
  const std::size_t stride = out.mutableOpenBits().rowWords(0).size();
  for (std::uint64_t d = 0; d < count; ++d) {
    for (;;) {
      const std::size_t r = lemire32(rows, rowReject);
      const std::size_t c = lemire32(cols, colReject);
      const std::size_t idx = r * stride + c / BitMatrix::kWordBits;
      const Word mask = Word{1} << (c % BitMatrix::kWordBits);
      if (((openBase[idx] | closedBase[idx]) & mask) != 0) continue;  // occupied: redraw
      DefectType t = DefectType::StuckOpen;
      if (stuckOpenRate() <= 0.0)
        t = DefectType::StuckClosed;
      else if (mixed && rng.uniform() < closedShare)
        t = DefectType::StuckClosed;
      (t == DefectType::StuckOpen ? openBase : closedBase)[idx] |= mask;
      break;
    }
  }
  // Defect sites arrive in random order; recover the sorted dirty-row list
  // with a word-level scan of the finished map (O(area/64), far below the
  // sampling cost it replaces).
  if (dirty != nullptr) dirty->scan(out);
}

// -------------------------------------------------------- ClusteredDefects

ClusteredDefects::ClusteredDefects(Params params) : params_(params) {
  // Density is seeds per crosspoint, so like every other rate it lives in
  // [0,1]; an unbounded value would overflow the cluster-count cast below.
  MCX_REQUIRE(params_.clusterDensity >= 0.0 && params_.clusterDensity <= 1.0,
              "ClusteredDefects: density in [0,1]");
  MCX_REQUIRE(params_.spread >= 0.0 && params_.spread < 1.0,
              "ClusteredDefects: spread in [0,1)");
  MCX_REQUIRE(params_.stuckClosedShare >= 0.0 && params_.stuckClosedShare <= 1.0,
              "ClusteredDefects: closed share in [0,1]");
}

std::string ClusteredDefects::describe() const {
  std::ostringstream out;
  out << "clustered(density=" << params_.clusterDensity << ", spread=" << params_.spread
      << ", closedShare=" << percent(params_.stuckClosedShare) << ")";
  return out.str();
}

void ClusteredDefects::generate(std::size_t rows, std::size_t cols, Rng& rng,
                                DefectMap& out) const {
  out.reshape(rows, cols);
  if (rows == 0 || cols == 0) return;

  const double expected = params_.clusterDensity * static_cast<double>(rows * cols);
  std::size_t clusters = static_cast<std::size_t>(expected);
  if (rng.bernoulli(expected - static_cast<double>(clusters))) ++clusters;

  for (std::size_t k = 0; k < clusters; ++k) {
    std::size_t r = static_cast<std::size_t>(rng.uniformInt(0, rows - 1));
    std::size_t c = static_cast<std::size_t>(rng.uniformInt(0, cols - 1));
    for (;;) {
      const DefectType t = rng.bernoulli(params_.stuckClosedShare) ? DefectType::StuckClosed
                                                                   : DefectType::StuckOpen;
      mark(out, r, c, t);
      if (!rng.bernoulli(params_.spread)) break;
      // Grow by one step of a lattice random walk, clamped at the borders
      // (edge clusters hug the edge, as real particles do).
      switch (rng.uniformInt(0, 3)) {
        case 0: r = r + 1 < rows ? r + 1 : r; break;
        case 1: r = r > 0 ? r - 1 : r; break;
        case 2: c = c + 1 < cols ? c + 1 : c; break;
        default: c = c > 0 ? c - 1 : c; break;
      }
    }
  }
}

// --------------------------------------------------------- LineCorrelated

LineCorrelated::LineCorrelated(Params params) : params_(params) {
  for (const double p : {params_.rowStuckClosedRate, params_.colStuckClosedRate,
                         params_.rowStuckOpenRate, params_.colStuckOpenRate})
    MCX_REQUIRE(p >= 0.0 && p <= 1.0, "LineCorrelated: rates in [0,1]");
}

std::string LineCorrelated::describe() const {
  return "lines(rowClosed=" + percent(params_.rowStuckClosedRate) +
         ", colClosed=" + percent(params_.colStuckClosedRate) +
         ", rowOpen=" + percent(params_.rowStuckOpenRate) +
         ", colOpen=" + percent(params_.colStuckOpenRate) + ")";
}

void LineCorrelated::generate(std::size_t rows, std::size_t cols, Rng& rng,
                              DefectMap& out) const {
  out.reshape(rows, cols);
  if (rows == 0 || cols == 0) return;

  for (std::size_t r = 0; r < rows; ++r) {
    if (rng.bernoulli(params_.rowStuckOpenRate))
      for (std::size_t c = 0; c < cols; ++c) mark(out, r, c, DefectType::StuckOpen);
    if (rng.bernoulli(params_.rowStuckClosedRate)) {
      const std::size_t c = static_cast<std::size_t>(rng.uniformInt(0, cols - 1));
      mark(out, r, c, DefectType::StuckClosed);
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    if (rng.bernoulli(params_.colStuckOpenRate))
      for (std::size_t r = 0; r < rows; ++r) mark(out, r, c, DefectType::StuckOpen);
    if (rng.bernoulli(params_.colStuckClosedRate)) {
      const std::size_t r = static_cast<std::size_t>(rng.uniformInt(0, rows - 1));
      mark(out, r, c, DefectType::StuckClosed);
    }
  }
}

// --------------------------------------------------------- RadialGradient

RadialGradient::RadialGradient(Params params) : params_(params) {
  MCX_REQUIRE(params_.centerRate >= 0.0 && params_.centerRate <= 1.0 &&
                  params_.edgeRate >= 0.0 && params_.edgeRate <= 1.0,
              "RadialGradient: rates in [0,1]");
  MCX_REQUIRE(params_.stuckClosedShare >= 0.0 && params_.stuckClosedShare <= 1.0,
              "RadialGradient: closed share in [0,1]");
}

std::string RadialGradient::describe() const {
  return "gradient(center=" + percent(params_.centerRate) +
         ", edge=" + percent(params_.edgeRate) +
         ", closedShare=" + percent(params_.stuckClosedShare) + ")";
}

void RadialGradient::generate(std::size_t rows, std::size_t cols, Rng& rng,
                              DefectMap& out) const {
  out.reshape(rows, cols);
  if (rows == 0 || cols == 0) return;

  const double centerR = static_cast<double>(rows - 1) / 2.0;
  const double centerC = static_cast<double>(cols - 1) / 2.0;
  const double maxDist = std::sqrt(centerR * centerR + centerC * centerC);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double dr = static_cast<double>(r) - centerR;
      const double dc = static_cast<double>(c) - centerC;
      const double d = maxDist > 0 ? std::sqrt(dr * dr + dc * dc) / maxDist : 0.0;
      const double p = params_.centerRate + (params_.edgeRate - params_.centerRate) * d;
      const double u = rng.uniform();
      if (u < p * (1.0 - params_.stuckClosedShare))
        out.setType(r, c, DefectType::StuckOpen);
      else if (u < p)
        out.setType(r, c, DefectType::StuckClosed);
    }
  }
}

// --------------------------------------------------------- CompositeModel

CompositeModel::CompositeModel(std::string label,
                               std::vector<std::shared_ptr<const DefectModel>> parts)
    : label_(std::move(label)), parts_(std::move(parts)) {
  MCX_REQUIRE(!parts_.empty(), "CompositeModel: needs at least one part");
  for (const auto& part : parts_)
    MCX_REQUIRE(part != nullptr, "CompositeModel: null part");
}

std::string CompositeModel::describe() const {
  std::string out = label_ + " = ";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += " + ";
    out += parts_[i]->describe();
  }
  return out;
}

void CompositeModel::generate(std::size_t rows, std::size_t cols, Rng& rng,
                              DefectMap& out) const {
  // The first part writes straight into the caller's scratch; later parts
  // reuse a per-thread buffer, keeping the Monte Carlo hot loop
  // allocation-free per sample (the engine's scratch-arena contract). A
  // *nested* composite among the later parts would receive that same
  // buffer as its own `out` and self-overlay, so the shared scratch is
  // borrowed only at the outermost level — recursive calls fall back to a
  // local buffer.
  parts_[0]->generate(rows, cols, rng, out);
  if (parts_.size() == 1) return;
  thread_local DefectMap sharedScratch;
  thread_local bool sharedScratchBusy = false;
  struct Borrow {
    bool taken;
    bool& busy;
    explicit Borrow(bool& b) : taken(!b), busy(b) {
      if (taken) busy = true;
    }
    ~Borrow() {
      if (taken) busy = false;
    }
  } borrow(sharedScratchBusy);
  DefectMap local;
  DefectMap& part = borrow.taken ? sharedScratch : local;
  for (std::size_t i = 1; i < parts_.size(); ++i) {
    parts_[i]->generate(rows, cols, rng, part);
    out.overlay(part);
  }
}

}  // namespace mcx
