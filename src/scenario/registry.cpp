#include "scenario/registry.hpp"

#include "util/error.hpp"

namespace mcx {

namespace {

std::shared_ptr<const DefectModel> makeClustered(double rate) {
  // Expected visited cells per cluster is 1 / (1 - spread); pick the seed
  // density so the expected defective fraction matches the budget. (Walk
  // revisits make the realized fraction slightly lower — acceptable for a
  // severity knob.)
  ClusteredDefects::Params p;
  p.spread = 0.85;
  p.clusterDensity = rate * (1.0 - p.spread);
  p.stuckClosedShare = 0.05;
  return std::make_shared<ClusteredDefects>(p);
}

std::shared_ptr<const DefectModel> makeLines(double rate) {
  LineCorrelated::Params p;
  p.rowStuckClosedRate = rate;
  p.colStuckClosedRate = rate / 2.0;
  return std::make_shared<LineCorrelated>(p);
}

std::shared_ptr<const DefectModel> makeGradient(double rate) {
  // Linear ramp whose mean over the array is roughly the budget: the mean
  // normalized radial distance is ~0.5, so center + (edge-center)/2 ~ rate.
  RadialGradient::Params p;
  p.centerRate = rate / 2.0;
  p.edgeRate = rate * 1.5;
  return std::make_shared<RadialGradient>(p);
}

std::shared_ptr<const DefectModel> makeComposite(double rate) {
  // Clustered permanents, occasional whole-line failures, and an i.i.d.
  // "upset" layer — the transient fault pattern of src/sim/transient_faults
  // frozen into the sample's map — split the budget.
  return std::make_shared<CompositeModel>(
      "fab+upsets",
      std::vector<std::shared_ptr<const DefectModel>>{
          makeClustered(rate / 2.0),
          makeLines(rate / 10.0),
          std::make_shared<SparseIidBernoulli>(rate / 2.0, 0.0),
      });
}

/// Reject unrecognized spec members: a typo'd parameter would otherwise be
/// silently dropped and the default scenario would run under the wrong
/// label (the same rationale as the typed accessors in spec.hpp).
void requireOnlyKeys(const SpecValue& spec, std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : spec.members) {
    bool known = false;
    for (const char* name : allowed)
      if (key == name) {
        known = true;
        break;
      }
    if (!known) throw ParseError("scenario spec: unknown member \"" + key + "\"");
  }
}

}  // namespace

const std::vector<ScenarioPreset>& scenarioPresets() {
  static const std::vector<ScenarioPreset> presets = {
      // The i.i.d. presets run the O(defects) sparse sampler: same
      // distribution as the paper's sweep, different stream. The
      // draw-for-draw legacy anchor is the engine's null-model rate pair.
      {"paper-iid", "the paper's model: i.i.d. stuck-open only (Tables II-III)",
       [](double rate) { return std::make_shared<SparseIidBernoulli>(rate, 0.0); }},
      {"iid-mixed", "i.i.d. with 10% of defects stuck-closed (line poisoning)",
       [](double rate) {
         return std::make_shared<SparseIidBernoulli>(rate * 0.9, rate * 0.1);
       }},
      {"clustered", "particle clusters: geometric random-walk blobs", makeClustered},
      {"lines", "whole-line failures: stuck-closed rows/columns", makeLines},
      {"gradient", "wafer-edge radial ramp of the stuck-open rate", makeGradient},
      {"composite", "clustered permanents + line failures + frozen i.i.d. upsets",
       makeComposite},
  };
  return presets;
}

const ScenarioPreset* findScenarioPreset(const std::string& name) {
  for (const ScenarioPreset& preset : scenarioPresets())
    if (preset.name == name) return &preset;
  return nullptr;
}

std::shared_ptr<const DefectModel> modelFromSpec(const SpecValue& spec) {
  if (!spec.isObject()) throw ParseError("scenario spec: expected a JSON object");

  if (const SpecValue* preset = spec.find("preset")) {
    requireOnlyKeys(spec, {"preset", "rate"});
    if (preset->kind != SpecValue::Kind::String)
      throw ParseError("scenario spec: \"preset\" must be a string");
    const ScenarioPreset* found = findScenarioPreset(preset->string);
    if (found == nullptr)
      throw ParseError("scenario spec: unknown preset \"" + preset->string + "\"");
    return found->make(spec.numberOr("rate", 0.10));
  }

  const std::string model = spec.stringOr("model", "");
  if (model == "iid") {
    requireOnlyKeys(spec, {"model", "open", "closed"});
    return std::make_shared<IidBernoulli>(spec.numberOr("open", 0.10),
                                          spec.numberOr("closed", 0.0));
  }
  if (model == "iid-sparse") {
    requireOnlyKeys(spec, {"model", "open", "closed"});
    return std::make_shared<SparseIidBernoulli>(spec.numberOr("open", 0.10),
                                                spec.numberOr("closed", 0.0));
  }
  if (model == "clustered") {
    requireOnlyKeys(spec, {"model", "density", "spread", "closedShare"});
    ClusteredDefects::Params p;
    p.clusterDensity = spec.numberOr("density", p.clusterDensity);
    p.spread = spec.numberOr("spread", p.spread);
    p.stuckClosedShare = spec.numberOr("closedShare", p.stuckClosedShare);
    return std::make_shared<ClusteredDefects>(p);
  }
  if (model == "lines") {
    requireOnlyKeys(spec, {"model", "rowClosed", "colClosed", "rowOpen", "colOpen"});
    LineCorrelated::Params p;
    p.rowStuckClosedRate = spec.numberOr("rowClosed", 0.0);
    p.colStuckClosedRate = spec.numberOr("colClosed", 0.0);
    p.rowStuckOpenRate = spec.numberOr("rowOpen", 0.0);
    p.colStuckOpenRate = spec.numberOr("colOpen", 0.0);
    return std::make_shared<LineCorrelated>(p);
  }
  if (model == "gradient") {
    requireOnlyKeys(spec, {"model", "center", "edge", "closedShare"});
    RadialGradient::Params p;
    p.centerRate = spec.numberOr("center", p.centerRate);
    p.edgeRate = spec.numberOr("edge", p.edgeRate);
    p.stuckClosedShare = spec.numberOr("closedShare", p.stuckClosedShare);
    return std::make_shared<RadialGradient>(p);
  }
  if (model == "composite") {
    requireOnlyKeys(spec, {"model", "label", "parts"});
    const SpecValue* parts = spec.find("parts");
    if (parts == nullptr || !parts->isArray() || parts->array.empty())
      throw ParseError("scenario spec: composite needs a non-empty \"parts\" array");
    std::vector<std::shared_ptr<const DefectModel>> built;
    built.reserve(parts->array.size());
    for (const SpecValue& part : parts->array) built.push_back(modelFromSpec(part));
    return std::make_shared<CompositeModel>(spec.stringOr("label", "composite"),
                                            std::move(built));
  }
  throw ParseError("scenario spec: unknown model \"" + model + "\"");
}

std::shared_ptr<const DefectModel> makeScenario(const std::string& nameOrSpec, double rate) {
  std::size_t first = 0;
  while (first < nameOrSpec.size() &&
         (nameOrSpec[first] == ' ' || nameOrSpec[first] == '\t' || nameOrSpec[first] == '\n'))
    ++first;
  if (first < nameOrSpec.size() && nameOrSpec[first] == '{')
    return modelFromSpec(parseSpec(nameOrSpec));

  const ScenarioPreset* preset = findScenarioPreset(nameOrSpec);
  if (preset == nullptr) {
    std::string known;
    for (const ScenarioPreset& p : scenarioPresets()) {
      if (!known.empty()) known += ", ";
      known += p.name;
    }
    throw ParseError("unknown scenario \"" + nameOrSpec + "\" (known presets: " + known +
                     "; or pass a JSON spec)");
  }
  return preset->make(rate);
}

const std::vector<double>& standardRateGrid() {
  static const std::vector<double> grid = {0.02, 0.05, 0.10, 0.15, 0.20, 0.30};
  return grid;
}

}  // namespace mcx
