#include "netlist/nand_network.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcx {

NandNetwork::NandNetwork(std::size_t numPis) {
  nodes_.reserve(numPis);
  pis_.reserve(numPis);
  for (std::size_t i = 0; i < numPis; ++i) {
    pis_.push_back(static_cast<NodeId>(nodes_.size()));
    nodes_.push_back(Node{true, {}});
  }
}

NodeId NandNetwork::pi(std::size_t i) const {
  MCX_REQUIRE(i < pis_.size(), "NandNetwork::pi out of range");
  return pis_[i];
}

bool NandNetwork::isPi(NodeId n) const {
  MCX_REQUIRE(n < nodes_.size(), "NandNetwork::isPi out of range");
  return nodes_[n].isPi;
}

NodeId NandNetwork::addNand(std::vector<Fanin> fanins) {
  MCX_REQUIRE(!fanins.empty(), "NandNetwork::addNand: empty fanin list");
  for (const Fanin& f : fanins) {
    MCX_REQUIRE(f.node < nodes_.size(), "NandNetwork::addNand: unknown fanin");
    MCX_REQUIRE(!f.invert || nodes_[f.node].isPi,
                "NandNetwork::addNand: only PI fanins may be inverted");
  }
  std::sort(fanins.begin(), fanins.end());
  fanins.erase(std::unique(fanins.begin(), fanins.end()), fanins.end());
  // A gate fed by both polarities of the same PI would be constant 1; the
  // synthesis pipeline never produces this from a consistent cover.
  for (std::size_t i = 0; i + 1 < fanins.size(); ++i)
    MCX_REQUIRE(!(fanins[i].node == fanins[i + 1].node),
                "NandNetwork::addNand: contradictory fanin polarities");

  if (const auto it = structuralHash_.find(fanins); it != structuralHash_.end())
    return it->second;
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{false, fanins});
  gates_.push_back(id);
  structuralHash_.emplace(std::move(fanins), id);
  return id;
}

void NandNetwork::addOutput(NodeId node, bool inverted) {
  MCX_REQUIRE(node < nodes_.size() && !nodes_[node].isPi,
              "NandNetwork::addOutput: output must be a NAND gate");
  outputs_.push_back(node);
  outputInverted_.push_back(inverted);
}

const std::vector<NandNetwork::Fanin>& NandNetwork::fanins(NodeId gate) const {
  MCX_REQUIRE(gate < nodes_.size() && !nodes_[gate].isPi, "NandNetwork::fanins: not a gate");
  return nodes_[gate].fanins;
}

std::size_t NandNetwork::maxFanin() const {
  std::size_t mf = 0;
  for (NodeId g : gates_) mf = std::max(mf, nodes_[g].fanins.size());
  return mf;
}

std::size_t NandNetwork::levelCount() const {
  std::vector<std::size_t> level(nodes_.size(), 0);
  std::size_t depth = 0;
  for (NodeId g : gates_) {
    std::size_t l = 0;
    for (const Fanin& f : nodes_[g].fanins) l = std::max(l, level[f.node]);
    level[g] = l + 1;
    depth = std::max(depth, level[g]);
  }
  return depth;
}

std::size_t NandNetwork::interconnectCount() const {
  std::vector<bool> feedsGate(nodes_.size(), false);
  for (NodeId g : gates_)
    for (const Fanin& f : nodes_[g].fanins)
      if (!nodes_[f.node].isPi) feedsGate[f.node] = true;
  std::size_t n = 0;
  for (NodeId g : gates_)
    if (feedsGate[g]) ++n;
  return n;
}

DynBits NandNetwork::evaluate(const DynBits& input) const {
  MCX_REQUIRE(input.size() == pis_.size(), "NandNetwork::evaluate arity mismatch");
  std::vector<char> value(nodes_.size(), 0);
  for (std::size_t i = 0; i < pis_.size(); ++i) value[pis_[i]] = input.test(i) ? 1 : 0;
  for (NodeId g : gates_) {
    char conj = 1;
    for (const Fanin& f : nodes_[g].fanins) {
      const char v = static_cast<char>(value[f.node] ^ (f.invert ? 1 : 0));
      if (v == 0) {
        conj = 0;
        break;
      }
    }
    value[g] = static_cast<char>(1 - conj);
  }
  DynBits out(outputs_.size());
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    const bool v = value[outputs_[o]] != 0;
    out.set(o, v != outputInverted_[o]);
  }
  return out;
}

TruthTable NandNetwork::toTruthTable() const {
  TruthTable tt(numPis(), numOutputs());
  DynBits input(numPis());
  for (std::size_t m = 0; m < tt.numMinterms(); ++m) {
    for (std::size_t i = 0; i < numPis(); ++i) input.set(i, ((m >> i) & 1u) != 0);
    const DynBits out = evaluate(input);
    out.forEachSet([&](std::size_t o) { tt.set(o, m); });
  }
  return tt;
}

}  // namespace mcx
