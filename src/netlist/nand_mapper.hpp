// SOP -> NAND network technology mapping (the library's ABC substitute).
//
// Each output of a cover is factored (netlist/factor.hpp) and the factor
// tree is converted to NAND-only gates over double-rail inputs:
//   AND(c1..ck)  ->  NAND(c1..ck) produces the complement (free to consume
//                    where a complement is wanted; otherwise a 1-input NAND
//                    inverter is inserted),
//   OR(c1..ck)   ->  NAND(!c1..!ck) produces the value directly.
// Literal polarity is free (IL provides both rails); output polarity is free
// (OL INR step). Structural hashing shares identical gates across outputs.
//
// An optional fan-in bound decomposes wide gates into NAND+inverter chains,
// matching the paper's "NAND gates with fan-in sizes 2 to n" setup.
#pragma once

#include "logic/cover.hpp"
#include "netlist/factor.hpp"
#include "netlist/nand_network.hpp"

namespace mcx {

struct NandMapOptions {
  /// Maximum NAND fan-in; 0 means unbounded (the paper's default is fan-in
  /// up to n, the function's input count, which is equivalent for SOP-sized
  /// products).
  std::size_t maxFanin = 0;
  /// If false, skip factoring and emit the flat two-level NAND-NAND form
  /// (products -> first-level NANDs, output -> one top NAND).
  bool factored = true;
  /// Use kernel-based factoring (netlist/kernels.hpp goodFactor) instead of
  /// literal-based quick factoring; slower, usually fewer gates.
  bool kernelFactoring = false;
};

/// Map a multi-output cover to a NAND network. Covers with constant outputs
/// (empty or tautological projections) are rejected — the crossbar
/// architecture computes non-trivial functions.
NandNetwork mapToNand(const Cover& cover, const NandMapOptions& opts = {});

/// Map a single factor tree as output 0 of a fresh network over @p nin PIs.
NandNetwork mapTreeToNand(const FactorTree& tree, std::size_t nin,
                          const NandMapOptions& opts = {});

/// Try the flat, quick-factored and kernel-factored mappings and keep the
/// one with the smallest multi-level crossbar area (what a technology
/// mapper like ABC effectively does). @p maxFanin as in NandMapOptions.
NandNetwork mapToNandBest(const Cover& cover, std::size_t maxFanin = 0);

}  // namespace mcx
