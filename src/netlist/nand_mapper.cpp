#include "netlist/nand_mapper.hpp"

#include <algorithm>
#include <optional>

#include "netlist/kernels.hpp"
#include "util/error.hpp"

namespace mcx {

namespace {

using Fanin = NandNetwork::Fanin;

/// A logical signal during mapping: a network fanin or a known constant
/// (constants appear when factoring non-minimal covers, e.g. the quotient of
/// x1 x2 + x1 !x2 is the tautology x2 + !x2).
struct Signal {
  enum class Kind { Const0, Const1, Wire } kind = Kind::Wire;
  Fanin fanin{};

  static Signal constant(bool v) { return {v ? Kind::Const1 : Kind::Const0, {}}; }
  static Signal wire(Fanin f) { return {Kind::Wire, f}; }
  bool isConst() const { return kind != Kind::Wire; }
  bool constValue() const { return kind == Kind::Const1; }
};

class TreeMapper {
public:
  TreeMapper(NandNetwork& net, std::size_t maxFanin) : net_(net), maxFanin_(maxFanin) {}

  /// The tree's value, complemented iff @p complemented.
  Signal emit(const FactorTree& tree, bool complemented) {
    switch (tree.kind) {
      case FactorTree::Kind::Literal:
        return Signal::wire(Fanin{net_.pi(tree.var), tree.negated != complemented});
      case FactorTree::Kind::And: {
        // NAND(children) is the complement of the AND.
        const Signal nand = nandOf(tree, /*complementChildren=*/false);
        return complemented ? nand : invert(nand);
      }
      case FactorTree::Kind::Or: {
        // NAND(!children) is the OR itself.
        const Signal nand = nandOf(tree, /*complementChildren=*/true);
        return complemented ? invert(nand) : nand;
      }
    }
    throw InvalidArgument("TreeMapper::emit: bad tree kind");
  }

  /// Emit the tree as a network output: {gate, outputInverted}. The OL
  /// inversion is free, so And/Or need exactly one gate at the top.
  std::pair<NodeId, bool> emitOutput(const FactorTree& tree) {
    switch (tree.kind) {
      case FactorTree::Kind::Literal:
        // Wrap in a 1-input NAND; OL inversion recovers the literal.
        return {gate({Fanin{net_.pi(tree.var), tree.negated}}), true};
      case FactorTree::Kind::And: {
        const Signal nand = nandOf(tree, false);
        MCX_REQUIRE(!nand.isConst(), "mapToNand: constant output function");
        return {asGate(nand.fanin), true};
      }
      case FactorTree::Kind::Or: {
        const Signal nand = nandOf(tree, true);
        MCX_REQUIRE(!nand.isConst(), "mapToNand: constant output function");
        return {asGate(nand.fanin), false};
      }
    }
    throw InvalidArgument("TreeMapper::emitOutput: bad tree kind");
  }

private:
  /// NAND over the children (each complemented iff @p complementChildren),
  /// with constant folding: NAND(.., 0, ..) = 1; 1-inputs are dropped;
  /// complementary PI rails short out to 1; NAND() = 0.
  Signal nandOf(const FactorTree& tree, bool complementChildren) {
    std::vector<Fanin> fanins;
    fanins.reserve(tree.children.size());
    for (const FactorTree& c : tree.children) {
      const Signal s = emit(c, complementChildren);
      if (s.isConst()) {
        if (!s.constValue()) return Signal::constant(true);  // NAND with a 0 input
        continue;                                            // drop 1 inputs
      }
      fanins.push_back(s.fanin);
    }
    if (fanins.empty()) return Signal::constant(false);  // NAND of nothing = !1
    std::sort(fanins.begin(), fanins.end());
    fanins.erase(std::unique(fanins.begin(), fanins.end()), fanins.end());
    for (std::size_t i = 0; i + 1 < fanins.size(); ++i)
      if (fanins[i].node == fanins[i + 1].node)
        return Signal::constant(true);  // x AND !x inside the NAND
    return Signal::wire(Fanin{gate(std::move(fanins)), false});
  }

  Signal invert(const Signal& s) {
    if (s.isConst()) return Signal::constant(!s.constValue());
    return Signal::wire(Fanin{gate({s.fanin}), false});
  }

  /// A wire must reference a gate to become a network output; PIs get a
  /// wrapper inverter pair upstream, so this always holds.
  NodeId asGate(const Fanin& f) const {
    MCX_REQUIRE(!f.invert && !net_.isPi(f.node), "mapToNand: output is not a gate");
    return f.node;
  }

  /// Create a NAND gate, decomposing beyond the fan-in bound:
  /// NAND(a1..am) = NAND(AND(a1..ak), a_{k+1}..am) with AND realized as
  /// NAND + inverter.
  NodeId gate(std::vector<Fanin> fanins) {
    if (maxFanin_ >= 2) {
      while (fanins.size() > maxFanin_) {
        std::vector<Fanin> group(fanins.end() - static_cast<std::ptrdiff_t>(maxFanin_),
                                 fanins.end());
        fanins.resize(fanins.size() - maxFanin_);
        const NodeId nandG = net_.addNand(std::move(group));
        const NodeId andG = net_.addNand({Fanin{nandG, false}});  // inverter
        fanins.push_back(Fanin{andG, false});
      }
    }
    return net_.addNand(std::move(fanins));
  }

  NandNetwork& net_;
  std::size_t maxFanin_;
};

FactorTree flatTree(const std::vector<Cube>& cubes, std::size_t nin) {
  std::vector<FactorTree> products;
  products.reserve(cubes.size());
  for (const Cube& c : cubes) {
    std::vector<FactorTree> lits;
    for (std::size_t v = 0; v < nin; ++v) {
      const Lit l = c.lit(v);
      if (l == Lit::Pos) lits.push_back(FactorTree::literal(v, false));
      if (l == Lit::Neg) lits.push_back(FactorTree::literal(v, true));
    }
    MCX_REQUIRE(!lits.empty(), "mapToNand: constant-1 product");
    products.push_back(FactorTree::makeAnd(std::move(lits)));
  }
  return FactorTree::makeOr(std::move(products));
}

}  // namespace

NandNetwork mapToNand(const Cover& cover, const NandMapOptions& opts) {
  MCX_REQUIRE(cover.nout() >= 1, "mapToNand: cover has no outputs");
  NandNetwork net(cover.nin());
  TreeMapper mapper(net, opts.maxFanin);
  for (std::size_t o = 0; o < cover.nout(); ++o) {
    const std::vector<Cube> proj = cover.projection(o);
    MCX_REQUIRE(!proj.empty(), "mapToNand: constant-0 output " + std::to_string(o));
    const FactorTree tree = !opts.factored          ? flatTree(proj, cover.nin())
                            : opts.kernelFactoring  ? goodFactor(proj, cover.nin())
                                                    : factorCover(proj, cover.nin());
    const auto [gate, inverted] = mapper.emitOutput(tree);
    net.addOutput(gate, inverted);
  }
  return net;
}

NandNetwork mapTreeToNand(const FactorTree& tree, std::size_t nin, const NandMapOptions& opts) {
  NandNetwork net(nin);
  TreeMapper mapper(net, opts.maxFanin);
  const auto [gate, inverted] = mapper.emitOutput(tree);
  net.addOutput(gate, inverted);
  return net;
}

NandNetwork mapToNandBest(const Cover& cover, std::size_t maxFanin) {
  NandMapOptions flat;
  flat.factored = false;
  flat.maxFanin = maxFanin;
  NandMapOptions quick;
  quick.maxFanin = maxFanin;
  NandMapOptions kernel;
  kernel.kernelFactoring = true;
  kernel.maxFanin = maxFanin;

  NandNetwork best = mapToNand(cover, flat);
  // Crossbar area needs the area model, which lives above this library;
  // compare by the quantities it is monotone in: rows = G + O and cols
  // grow with the interconnect count, so compare (G + C) then G.
  const auto costOf = [](const NandNetwork& net) {
    return std::pair<std::size_t, std::size_t>(net.gateCount() + net.interconnectCount(),
                                               net.gateCount());
  };
  for (const NandMapOptions& opts : {quick, kernel}) {
    NandNetwork candidate = mapToNand(cover, opts);
    if (costOf(candidate) < costOf(best)) best = std::move(candidate);
  }
  return best;
}

}  // namespace mcx
