#include "netlist/export.hpp"

#include <sstream>

namespace mcx {

std::string toDot(const NandNetwork& net, const std::string& graphName) {
  std::ostringstream os;
  os << "digraph " << graphName << " {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < net.numPis(); ++i)
    os << "  n" << net.pi(i) << " [shape=box,label=\"x" << i + 1 << "\"];\n";
  for (const NodeId g : net.gates())
    os << "  n" << g << " [shape=circle,label=\"NAND\"];\n";
  for (const NodeId g : net.gates()) {
    for (const auto& f : net.fanins(g)) {
      os << "  n" << f.node << " -> n" << g;
      if (f.invert) os << " [style=dashed,label=\"!\"]";
      os << ";\n";
    }
  }
  for (std::size_t o = 0; o < net.numOutputs(); ++o) {
    os << "  out" << o << " [shape=doublecircle,label=\"O" << o + 1
       << (net.outputInverted(o) ? " (inv)" : "") << "\"];\n";
    os << "  n" << net.outputNode(o) << " -> out" << o << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string toVerilog(const NandNetwork& net, const std::string& moduleName) {
  std::ostringstream os;
  os << "module " << moduleName << " (";
  for (std::size_t i = 0; i < net.numPis(); ++i) os << "x" << i + 1 << ", ";
  for (std::size_t o = 0; o < net.numOutputs(); ++o)
    os << "o" << o + 1 << (o + 1 < net.numOutputs() ? ", " : "");
  os << ");\n";
  for (std::size_t i = 0; i < net.numPis(); ++i) os << "  input x" << i + 1 << ";\n";
  for (std::size_t o = 0; o < net.numOutputs(); ++o) os << "  output o" << o + 1 << ";\n";

  // Inverted PI rails used anywhere get a shared inverter wire.
  std::vector<bool> railNeeded(net.numPis(), false);
  for (const NodeId g : net.gates())
    for (const auto& f : net.fanins(g))
      if (f.invert) railNeeded[f.node] = true;
  for (std::size_t i = 0; i < net.numPis(); ++i) {
    if (railNeeded[net.pi(i)]) {
      os << "  wire xb" << i + 1 << ";\n";
      os << "  not (xb" << i + 1 << ", x" << i + 1 << ");\n";
    }
  }
  for (const NodeId g : net.gates()) os << "  wire g" << g << ";\n";

  for (const NodeId g : net.gates()) {
    os << "  nand (g" << g;
    for (const auto& f : net.fanins(g)) {
      os << ", ";
      if (net.isPi(f.node))
        os << (f.invert ? "xb" : "x") << f.node + 1;
      else
        os << "g" << f.node;
    }
    os << ");\n";
  }
  for (std::size_t o = 0; o < net.numOutputs(); ++o) {
    if (net.outputInverted(o))
      os << "  not (o" << o + 1 << ", g" << net.outputNode(o) << ");\n";
    else
      os << "  assign o" << o + 1 << " = g" << net.outputNode(o) << ";\n";
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace mcx
