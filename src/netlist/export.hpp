// Exporters: Graphviz DOT for NAND networks and structural Verilog
// (gate-level, NAND primitives) for downstream tool interop.
#pragma once

#include <string>

#include "netlist/nand_network.hpp"

namespace mcx {

/// Graphviz DOT rendering (PIs as boxes, NAND gates as circles, outputs as
/// double circles; dashed edges mark inverted PI rails).
std::string toDot(const NandNetwork& net, const std::string& graphName = "nand_network");

/// Structural Verilog with `nand` and `not` primitives. Module ports are
/// x1..xI and o1..oO.
std::string toVerilog(const NandNetwork& net, const std::string& moduleName = "mcx_netlist");

}  // namespace mcx
