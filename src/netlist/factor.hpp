// Algebraic factoring of single-output covers (quick-factor style).
//
// Produces an AND/OR/literal factor tree from a SOP by recursively dividing
// out the most frequent literal (Brayton's "literal factoring"). The tree is
// the input of the NAND mapper (netlist/nand_mapper.hpp), which turns it
// into the NAND-only network that the multi-level crossbar executes.
#pragma once

#include <cstddef>
#include <vector>

#include "logic/cover.hpp"

namespace mcx {

struct FactorTree {
  enum class Kind { Literal, And, Or };

  Kind kind = Kind::Literal;
  // Literal payload:
  std::size_t var = 0;
  bool negated = false;
  // And / Or payload:
  std::vector<FactorTree> children;

  static FactorTree literal(std::size_t var, bool negated);
  static FactorTree makeAnd(std::vector<FactorTree> children);
  static FactorTree makeOr(std::vector<FactorTree> children);

  /// Number of literal leaves.
  std::size_t literalCount() const;
  /// Infix rendering, e.g. "(x1 + x2 (x3 + !x4))".
  std::string toString() const;
};

/// Factor the input parts of @p cubes (a single-output SOP over @p nin
/// variables). Requires a non-empty cover with no empty cubes; a cover
/// containing a full-don't-care cube is rejected (constant functions have
/// no factor tree).
FactorTree factorCover(const std::vector<Cube>& cubes, std::size_t nin);

/// Evaluate a factor tree on one input assignment (test helper).
bool evaluateFactorTree(const FactorTree& tree, const DynBits& input);

}  // namespace mcx
