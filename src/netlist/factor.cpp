#include "netlist/factor.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcx {

FactorTree FactorTree::literal(std::size_t var, bool negated) {
  FactorTree t;
  t.kind = Kind::Literal;
  t.var = var;
  t.negated = negated;
  return t;
}

FactorTree FactorTree::makeAnd(std::vector<FactorTree> children) {
  MCX_REQUIRE(!children.empty(), "FactorTree::makeAnd: no children");
  if (children.size() == 1) return std::move(children.front());
  FactorTree t;
  t.kind = Kind::And;
  // Flatten nested ANDs so gate fan-in reflects the real product width.
  for (FactorTree& c : children) {
    if (c.kind == Kind::And) {
      for (FactorTree& g : c.children) t.children.push_back(std::move(g));
    } else {
      t.children.push_back(std::move(c));
    }
  }
  return t;
}

FactorTree FactorTree::makeOr(std::vector<FactorTree> children) {
  MCX_REQUIRE(!children.empty(), "FactorTree::makeOr: no children");
  if (children.size() == 1) return std::move(children.front());
  FactorTree t;
  t.kind = Kind::Or;
  for (FactorTree& c : children) {
    if (c.kind == Kind::Or) {
      for (FactorTree& g : c.children) t.children.push_back(std::move(g));
    } else {
      t.children.push_back(std::move(c));
    }
  }
  return t;
}

std::size_t FactorTree::literalCount() const {
  if (kind == Kind::Literal) return 1;
  std::size_t n = 0;
  for (const FactorTree& c : children) n += c.literalCount();
  return n;
}

std::string FactorTree::toString() const {
  switch (kind) {
    case Kind::Literal:
      return (negated ? "!x" : "x") + std::to_string(var + 1);
    case Kind::And: {
      std::string s;
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i) s += ' ';
        const bool paren = children[i].kind == Kind::Or;
        if (paren) s += '(';
        s += children[i].toString();
        if (paren) s += ')';
      }
      return s;
    }
    case Kind::Or: {
      std::string s;
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i) s += " + ";
        s += children[i].toString();
      }
      return s;
    }
  }
  return {};
}

namespace {

FactorTree cubeToTree(const Cube& c) {
  std::vector<FactorTree> lits;
  for (std::size_t v = 0; v < c.nin(); ++v) {
    const Lit l = c.lit(v);
    if (l == Lit::Pos) lits.push_back(FactorTree::literal(v, false));
    if (l == Lit::Neg) lits.push_back(FactorTree::literal(v, true));
  }
  MCX_REQUIRE(!lits.empty(), "factorCover: constant-1 product has no factor tree");
  return FactorTree::makeAnd(std::move(lits));
}

FactorTree factorRec(std::vector<Cube> cubes, std::size_t nin) {
  MCX_REQUIRE(!cubes.empty(), "factorCover: empty cover");
  if (cubes.size() == 1) return cubeToTree(cubes.front());

  // Most frequent literal over the cover.
  std::size_t bestVar = nin;
  Lit bestLit = Lit::DontCare;
  std::size_t bestCount = 1;
  for (std::size_t v = 0; v < nin; ++v) {
    std::size_t pos = 0, neg = 0;
    for (const Cube& c : cubes) {
      const Lit l = c.lit(v);
      if (l == Lit::Pos) ++pos;
      if (l == Lit::Neg) ++neg;
    }
    if (pos > bestCount) {
      bestCount = pos;
      bestVar = v;
      bestLit = Lit::Pos;
    }
    if (neg > bestCount) {
      bestCount = neg;
      bestVar = v;
      bestLit = Lit::Neg;
    }
  }

  if (bestVar == nin) {
    // No literal shared by two products: plain OR of product terms.
    std::vector<FactorTree> terms;
    terms.reserve(cubes.size());
    for (const Cube& c : cubes) terms.push_back(cubeToTree(c));
    return FactorTree::makeOr(std::move(terms));
  }

  // If some product is exactly the chosen literal, l absorbs every product
  // containing l: cover = l + remainder.
  const FactorTree literalTree = FactorTree::literal(bestVar, bestLit == Lit::Neg);
  for (const Cube& c : cubes) {
    if (c.lit(bestVar) == bestLit && c.literalCount() == 1) {
      std::vector<Cube> rest;
      for (const Cube& d : cubes)
        if (d.lit(bestVar) != bestLit) rest.push_back(d);
      if (rest.empty()) return literalTree;
      std::vector<FactorTree> orChildren;
      orChildren.push_back(literalTree);
      orChildren.push_back(factorRec(std::move(rest), nin));
      return FactorTree::makeOr(std::move(orChildren));
    }
  }

  // Divide: cubes containing the literal form l * quotient; rest is remainder.
  std::vector<Cube> quotient, remainder;
  for (Cube& c : cubes) {
    if (c.lit(bestVar) == bestLit) {
      c.setLit(bestVar, Lit::DontCare);
      quotient.push_back(std::move(c));
    } else {
      remainder.push_back(std::move(c));
    }
  }

  std::vector<FactorTree> andChildren;
  andChildren.push_back(literalTree);
  andChildren.push_back(factorRec(std::move(quotient), nin));
  FactorTree lTimesQ = FactorTree::makeAnd(std::move(andChildren));
  if (remainder.empty()) return lTimesQ;

  std::vector<FactorTree> orChildren;
  orChildren.push_back(std::move(lTimesQ));
  orChildren.push_back(factorRec(std::move(remainder), nin));
  return FactorTree::makeOr(std::move(orChildren));
}

}  // namespace

FactorTree factorCover(const std::vector<Cube>& cubes, std::size_t nin) {
  MCX_REQUIRE(!cubes.empty(), "factorCover: empty cover (constant 0)");
  for (const Cube& c : cubes) {
    MCX_REQUIRE(!c.inputEmpty(), "factorCover: empty cube");
    MCX_REQUIRE(c.literalCount() > 0, "factorCover: constant-1 cover");
  }
  return factorRec(cubes, nin);
}

bool evaluateFactorTree(const FactorTree& tree, const DynBits& input) {
  switch (tree.kind) {
    case FactorTree::Kind::Literal:
      return input.test(tree.var) != tree.negated;
    case FactorTree::Kind::And:
      for (const FactorTree& c : tree.children)
        if (!evaluateFactorTree(c, input)) return false;
      return true;
    case FactorTree::Kind::Or:
      for (const FactorTree& c : tree.children)
        if (evaluateFactorTree(c, input)) return true;
      return false;
  }
  return false;
}

}  // namespace mcx
