// NandNetwork: a multi-level netlist of NAND gates over double-rail inputs.
//
// This models exactly what the paper's multi-level crossbar can realize:
// each horizontal line evaluates one NAND gate; primary inputs are available
// in both polarities for free (IL provides x and !x columns); intermediate
// gate outputs can only be consumed as produced (inverting an intermediate
// signal requires a 1-input NAND gate, i.e. an extra row); final outputs are
// available in both polarities for free (the OL INR step).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "logic/truth_table.hpp"
#include "util/bits.hpp"

namespace mcx {

using NodeId = std::uint32_t;

class NandNetwork {
public:
  struct Fanin {
    NodeId node = 0;
    /// Only primary inputs may be consumed inverted (double-rail IL).
    bool invert = false;

    auto operator<=>(const Fanin&) const = default;
  };

  /// An empty network (no PIs); useful as a default-constructed member.
  NandNetwork() = default;
  explicit NandNetwork(std::size_t numPis);

  std::size_t numPis() const { return pis_.size(); }
  NodeId pi(std::size_t i) const;
  bool isPi(NodeId n) const;

  /// Create (or reuse, via structural hashing) a NAND gate. Fanins are
  /// canonicalized by sorting. Inverted fanins must reference PIs.
  NodeId addNand(std::vector<Fanin> fanins);

  /// Register network output @p o as @p node, complemented iff @p inverted
  /// (free at the output latch). The node must be a NAND gate.
  void addOutput(NodeId node, bool inverted);

  std::size_t numOutputs() const { return outputs_.size(); }
  NodeId outputNode(std::size_t o) const { return outputs_[o]; }
  bool outputInverted(std::size_t o) const { return outputInverted_[o]; }

  std::size_t gateCount() const { return gates_.size(); }
  /// Gates in topological order (fanins precede users).
  const std::vector<NodeId>& gates() const { return gates_; }
  const std::vector<Fanin>& fanins(NodeId gate) const;

  /// Largest NAND fan-in in the network.
  std::size_t maxFanin() const;
  /// Depth in gate levels (PIs are level 0).
  std::size_t levelCount() const;
  /// Number of gates whose output feeds at least one other gate. In the
  /// multi-level crossbar each such gate needs one multi-level connection
  /// column (the "C" of the area model).
  std::size_t interconnectCount() const;

  /// Evaluate all outputs for one input assignment (bit i = value of PI i).
  DynBits evaluate(const DynBits& input) const;

  /// Exhaustive truth table (numPis <= 24; intended for <= ~20).
  TruthTable toTruthTable() const;

private:
  struct Node {
    bool isPi = false;
    std::vector<Fanin> fanins;
  };

  std::vector<Node> nodes_;
  std::vector<NodeId> pis_;
  std::vector<NodeId> gates_;
  std::vector<NodeId> outputs_;
  std::vector<bool> outputInverted_;
  std::map<std::vector<Fanin>, NodeId> structuralHash_;
};

}  // namespace mcx
