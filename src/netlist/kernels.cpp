#include "netlist/kernels.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace mcx {

namespace {

/// The cube of literals common to every cube (the "largest common cube").
Cube commonCube(const std::vector<Cube>& cubes, std::size_t nin) {
  MCX_REQUIRE(!cubes.empty(), "commonCube: empty cover");
  Cube common(nin, 0);
  common.inputBits().resetAll();
  // A literal is common iff present in all cubes: intersect "restriction"
  // patterns. Work per variable for clarity (covers here are small).
  for (std::size_t v = 0; v < nin; ++v) {
    const Lit first = cubes.front().lit(v);
    if (first == Lit::DontCare || first == Lit::Empty) {
      common.setLit(v, Lit::DontCare);
      continue;
    }
    bool everywhere = true;
    for (const Cube& c : cubes)
      if (c.lit(v) != first) everywhere = false;
    common.setLit(v, everywhere ? first : Lit::DontCare);
  }
  return common;
}

/// Divide every cube by a single cube (all must contain it).
std::vector<Cube> divideByCube(const std::vector<Cube>& cubes, const Cube& divisor,
                               std::size_t nin) {
  std::vector<Cube> result;
  result.reserve(cubes.size());
  for (const Cube& c : cubes) {
    Cube q = c;
    for (std::size_t v = 0; v < nin; ++v)
      if (divisor.lit(v) != Lit::DontCare) q.setLit(v, Lit::DontCare);
    result.push_back(std::move(q));
  }
  return result;
}

/// Cubes of @p cubes containing literal (var, lit).
std::vector<Cube> cubesWithLiteral(const std::vector<Cube>& cubes, std::size_t var, Lit lit) {
  std::vector<Cube> result;
  for (const Cube& c : cubes)
    if (c.lit(var) == lit) result.push_back(c);
  return result;
}

void kernelsRec(const std::vector<Cube>& cubes, std::size_t nin, std::size_t minVar,
                const Cube& coKernel, std::vector<KernelEntry>& out) {
  for (std::size_t v = minVar; v < nin; ++v) {
    for (const Lit lit : {Lit::Pos, Lit::Neg}) {
      std::vector<Cube> with = cubesWithLiteral(cubes, v, lit);
      if (with.size() < 2) continue;
      const Cube common = commonCube(with, nin);
      // Skip if some earlier variable is also common (avoids duplicates —
      // the standard "largest literal < j" pruning).
      bool dominated = false;
      for (std::size_t u = 0; u < v && !dominated; ++u)
        if (common.lit(u) != Lit::DontCare) dominated = true;
      if (dominated) continue;

      std::vector<Cube> quotient = divideByCube(with, common, nin);
      Cube newCo = coKernel;
      for (std::size_t u = 0; u < nin; ++u)
        if (common.lit(u) != Lit::DontCare) newCo.setLit(u, common.lit(u));
      out.push_back({quotient, newCo});
      kernelsRec(quotient, nin, v + 1, newCo, out);
    }
  }
}

std::size_t literalCountOf(const std::vector<Cube>& cubes) {
  std::size_t n = 0;
  for (const Cube& c : cubes) n += c.literalCount();
  return n;
}

}  // namespace

bool isCubeFree(const std::vector<Cube>& cubes, std::size_t nin) {
  if (cubes.empty()) return false;
  return commonCube(cubes, nin).literalCount() == 0;
}

std::vector<KernelEntry> allKernels(const std::vector<Cube>& cubes, std::size_t nin) {
  std::vector<KernelEntry> kernels;
  if (cubes.size() >= 2 && isCubeFree(cubes, nin)) {
    Cube unit(nin, 0);
    kernels.push_back({cubes, unit});
  }
  Cube unit(nin, 0);
  kernelsRec(cubes, nin, 0, unit, kernels);

  // De-duplicate kernels (same quotient reachable through several paths).
  std::map<std::string, std::size_t> seen;
  std::vector<KernelEntry> unique;
  for (KernelEntry& k : kernels) {
    std::vector<std::string> lines;
    lines.reserve(k.kernel.size());
    for (const Cube& c : k.kernel) lines.push_back(c.inputString());
    std::sort(lines.begin(), lines.end());
    std::string key;
    for (const auto& l : lines) key += l + "|";
    if (seen.emplace(std::move(key), unique.size()).second) unique.push_back(std::move(k));
  }
  return unique;
}

DivisionResult algebraicDivide(const std::vector<Cube>& cubes,
                               const std::vector<Cube>& divisor, std::size_t nin) {
  DivisionResult result;
  if (divisor.empty()) return result;

  // Quotient = intersection over divisor cubes d of { c / d : c multiple of d }.
  std::vector<std::vector<Cube>> perDivisor;
  for (const Cube& d : divisor) {
    std::vector<Cube> quotients;
    for (const Cube& c : cubes) {
      // c is an algebraic multiple of d iff every literal of d appears in c.
      bool multiple = true;
      for (std::size_t v = 0; v < nin && multiple; ++v) {
        const Lit dl = d.lit(v);
        if (dl != Lit::DontCare && c.lit(v) != dl) multiple = false;
      }
      if (!multiple) continue;
      Cube q = c;
      for (std::size_t v = 0; v < nin; ++v)
        if (d.lit(v) != Lit::DontCare) q.setLit(v, Lit::DontCare);
      quotients.push_back(std::move(q));
    }
    perDivisor.push_back(std::move(quotients));
  }

  // Intersect the quotient sets (by input pattern).
  std::vector<Cube> quotient;
  for (const Cube& q : perDivisor.front()) {
    bool inAll = true;
    for (std::size_t i = 1; i < perDivisor.size() && inAll; ++i) {
      bool found = false;
      for (const Cube& other : perDivisor[i])
        if (other.inputBits() == q.inputBits()) found = true;
      inAll = found;
    }
    // The quotient must also share no variables with the divisor cube it
    // multiplies — guaranteed by construction (literals were raised).
    if (inAll) quotient.push_back(q);
  }
  // Remove duplicates.
  std::sort(quotient.begin(), quotient.end(),
            [](const Cube& a, const Cube& b) { return a.inputBits() < b.inputBits(); });
  quotient.erase(std::unique(quotient.begin(), quotient.end()), quotient.end());
  if (quotient.empty()) return result;

  // Remainder = cubes not expressible as divisor * quotient.
  std::vector<bool> used(cubes.size(), false);
  for (const Cube& d : divisor) {
    for (const Cube& q : quotient) {
      Cube product = d;
      bool compatible = true;
      for (std::size_t v = 0; v < nin; ++v) {
        const Lit ql = q.lit(v);
        if (ql == Lit::DontCare) continue;
        if (product.lit(v) != Lit::DontCare && product.lit(v) != ql) compatible = false;
        product.setLit(v, ql);
      }
      if (!compatible) continue;
      for (std::size_t i = 0; i < cubes.size(); ++i)
        if (!used[i] && cubes[i].inputBits() == product.inputBits()) used[i] = true;
    }
  }
  result.quotient = std::move(quotient);
  for (std::size_t i = 0; i < cubes.size(); ++i)
    if (!used[i]) result.remainder.push_back(cubes[i]);
  return result;
}

FactorTree goodFactor(const std::vector<Cube>& cubesIn, std::size_t nin) {
  MCX_REQUIRE(!cubesIn.empty(), "goodFactor: empty cover");
  // Sub-covers arising from division can contain single-cube-contained
  // cubes (e.g. the quotient of {ab, abc} by a); drop them so the algebra
  // below never sees an absorbed or universal cube.
  std::vector<Cube> cubes;
  for (const Cube& c : cubesIn) {
    bool contained = false;
    for (const Cube& d : cubesIn) {
      if (&c == &d) continue;
      if (d.inputContains(c) && !(c.inputContains(d) && &c < &d)) {
        contained = true;
        break;
      }
    }
    if (!contained) cubes.push_back(c);
  }
  if (cubes.size() == 1) return factorCover(cubes, nin);

  // Pick the kernel with the largest literal savings:
  // value = (|kernel cubes| - 1) * |coKernel literals| +
  //         (uses of kernel as divisor - 1) * kernel literals (approximated
  //         by one use here: savings = shared co-kernel extraction).
  const std::vector<KernelEntry> kernels = allKernels(cubes, nin);
  const KernelEntry* best = nullptr;
  std::size_t bestValue = 0;
  for (const KernelEntry& k : kernels) {
    if (k.kernel.size() < 2) continue;
    const DivisionResult division = algebraicDivide(cubes, k.kernel, nin);
    if (division.quotient.empty()) continue;
    const std::size_t without = literalCountOf(cubes);
    const std::size_t with = literalCountOf(k.kernel) + literalCountOf(division.quotient) +
                             literalCountOf(division.remainder);
    if (with < without && without - with > bestValue) {
      bestValue = without - with;
      best = &k;
    }
  }
  if (best == nullptr) return factorCover(cubes, nin);

  const DivisionResult division = algebraicDivide(cubes, best->kernel, nin);
  FactorTree kernelTree = goodFactor(best->kernel, nin);

  // A unit quotient (single all-don't-care cube) means the product is just
  // the kernel.
  const bool unitQuotient =
      division.quotient.size() == 1 && division.quotient.front().literalCount() == 0;
  FactorTree product = [&] {
    if (unitQuotient) return std::move(kernelTree);
    std::vector<FactorTree> andChildren;
    andChildren.push_back(goodFactor(division.quotient, nin));
    andChildren.push_back(std::move(kernelTree));
    return FactorTree::makeAnd(std::move(andChildren));
  }();
  if (division.remainder.empty()) return product;

  std::vector<FactorTree> orChildren;
  orChildren.push_back(std::move(product));
  orChildren.push_back(goodFactor(division.remainder, nin));
  return FactorTree::makeOr(std::move(orChildren));
}

}  // namespace mcx
