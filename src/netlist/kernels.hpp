// Algebraic kernels and kernel-based factoring (Brayton-McMullen).
//
// A kernel of an algebraic expression is a cube-free quotient by a cube
// (the co-kernel). Kernels expose the multi-cube common divisors that
// literal-based quick factoring misses; goodFactor() divides by the best
// kernel (largest literal savings) recursively and typically produces
// smaller NAND networks — see the ablation-factoring bench suite.
#pragma once

#include <cstddef>
#include <vector>

#include "logic/cover.hpp"
#include "netlist/factor.hpp"

namespace mcx {

struct KernelEntry {
  std::vector<Cube> kernel;  ///< cube-free quotient (input parts only)
  Cube coKernel;             ///< the cube divided out
};

/// All (kernel, co-kernel) pairs of the cover, including the cover itself
/// when it is cube-free (level-0 and higher kernels).
std::vector<KernelEntry> allKernels(const std::vector<Cube>& cubes, std::size_t nin);

/// True iff no literal appears in every cube.
bool isCubeFree(const std::vector<Cube>& cubes, std::size_t nin);

/// Weak (algebraic) division of @p cubes by @p divisor: returns quotient
/// cubes (empty if the divisor does not algebraically divide the cover).
/// The remainder is cubes minus divisor*quotient.
struct DivisionResult {
  std::vector<Cube> quotient;
  std::vector<Cube> remainder;
};
DivisionResult algebraicDivide(const std::vector<Cube>& cubes,
                               const std::vector<Cube>& divisor, std::size_t nin);

/// Kernel-based factoring: like factorCover but dividing by the
/// highest-value kernel at each step (falls back to literal division when no
/// kernel helps).
FactorTree goodFactor(const std::vector<Cube>& cubes, std::size_t nin);

}  // namespace mcx
