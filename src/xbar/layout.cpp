#include "xbar/layout.hpp"

#include <sstream>

#include "util/error.hpp"

namespace mcx {

namespace {

std::string columnLabel(const FunctionMatrix& fm, std::size_t c) {
  if (c < fm.nin()) return "x" + std::to_string(c + 1);
  if (c < 2 * fm.nin()) return "!x" + std::to_string(c - fm.nin() + 1);
  const std::size_t base = 2 * fm.nin();
  if (c < base + fm.numConnectionCols()) return "c" + std::to_string(c - base + 1);
  const std::size_t obase = base + fm.numConnectionCols();
  if (c < obase + fm.nout()) return "O" + std::to_string(c - obase + 1);
  return "!O" + std::to_string(c - obase - fm.nout() + 1);
}

}  // namespace

std::string TwoLevelLayout::toAsciiDiagram() const {
  std::ostringstream os;
  constexpr int w = 4;
  os << std::string(12, ' ');
  for (std::size_t c = 0; c < fm.cols(); ++c) {
    std::string l = columnLabel(fm, c);
    l.resize(w - 1, ' ');
    os << l << ' ';
  }
  os << '\n';
  for (std::size_t r = 0; r < fm.rows(); ++r) {
    std::string label = r < fm.numProductRows() ? "m" + std::to_string(r + 1)
                                                : "out" + std::to_string(r - fm.numProductRows() + 1);
    label.resize(11, ' ');
    os << label << ' ';
    for (std::size_t c = 0; c < fm.cols(); ++c)
      os << (fm.bits().test(r, c) ? "#" : ".") << std::string(w - 1, ' ');
    os << '\n';
  }
  os << "rows=" << fm.rows() << " cols=" << fm.cols() << " area=" << fm.dims().area()
     << " switches=" << fm.usedSwitches() << '\n';
  return os.str();
}

TwoLevelLayout buildTwoLevelLayout(Cover cover) {
  TwoLevelLayout layout;
  layout.fm = buildFunctionMatrix(cover);
  layout.cover = std::move(cover);
  return layout;
}

DualChoice chooseDual(const Cover& original, const Cover& complement) {
  MCX_REQUIRE(original.nin() == complement.nin() && original.nout() == complement.nout(),
              "chooseDual: arity mismatch");
  DualChoice choice;
  choice.areaOriginal = twoLevelDims(original).area();
  choice.areaComplement = twoLevelDims(complement).area();
  choice.usedComplement = choice.areaComplement < choice.areaOriginal;
  choice.layout = buildTwoLevelLayout(choice.usedComplement ? complement : original);
  return choice;
}

}  // namespace mcx
