#include "xbar/layout.hpp"

#include <sstream>

#include "util/error.hpp"

namespace mcx {

namespace {

// Built via append rather than operator+ chains: GCC 12's -Wrestrict fires
// a false positive (PR 105329) on inlined char* + std::string concatenation.
std::string numberedLabel(const char* prefix, std::size_t index) {
  std::string out(prefix);
  out += std::to_string(index);
  return out;
}

std::string columnLabel(const FunctionMatrix& fm, std::size_t c) {
  if (c < fm.nin()) return numberedLabel("x", c + 1);
  if (c < 2 * fm.nin()) return numberedLabel("!x", c - fm.nin() + 1);
  const std::size_t base = 2 * fm.nin();
  if (c < base + fm.numConnectionCols()) return numberedLabel("c", c - base + 1);
  const std::size_t obase = base + fm.numConnectionCols();
  if (c < obase + fm.nout()) return numberedLabel("O", c - obase + 1);
  return numberedLabel("!O", c - obase - fm.nout() + 1);
}

}  // namespace

std::string TwoLevelLayout::toAsciiDiagram() const {
  std::ostringstream os;
  constexpr int w = 4;
  os << std::string(12, ' ');
  for (std::size_t c = 0; c < fm.cols(); ++c) {
    std::string l = columnLabel(fm, c);
    l.resize(w - 1, ' ');
    os << l << ' ';
  }
  os << '\n';
  for (std::size_t r = 0; r < fm.rows(); ++r) {
    std::string label = r < fm.numProductRows()
                            ? numberedLabel("m", r + 1)
                            : numberedLabel("out", r - fm.numProductRows() + 1);
    label.resize(11, ' ');
    os << label << ' ';
    for (std::size_t c = 0; c < fm.cols(); ++c)
      os << (fm.bits().test(r, c) ? "#" : ".") << std::string(w - 1, ' ');
    os << '\n';
  }
  os << "rows=" << fm.rows() << " cols=" << fm.cols() << " area=" << fm.dims().area()
     << " switches=" << fm.usedSwitches() << '\n';
  return os.str();
}

TwoLevelLayout buildTwoLevelLayout(Cover cover) {
  TwoLevelLayout layout;
  layout.fm = buildFunctionMatrix(cover);
  layout.cover = std::move(cover);
  return layout;
}

DualChoice chooseDual(const Cover& original, const Cover& complement) {
  MCX_REQUIRE(original.nin() == complement.nin() && original.nout() == complement.nout(),
              "chooseDual: arity mismatch");
  DualChoice choice;
  choice.areaOriginal = twoLevelDims(original).area();
  choice.areaComplement = twoLevelDims(complement).area();
  choice.usedComplement = choice.areaComplement < choice.areaOriginal;
  choice.layout = buildTwoLevelLayout(choice.usedComplement ? complement : original);
  return choice;
}

}  // namespace mcx
