#include "xbar/function_matrix.hpp"

#include "util/error.hpp"

namespace mcx {

FunctionMatrix::FunctionMatrix(std::size_t nin, std::size_t nout, std::size_t products,
                               std::size_t extraConnectionCols)
    : nin_(nin),
      nout_(nout),
      products_(products),
      conns_(extraConnectionCols),
      bits_(products + nout, 2 * nin + extraConnectionCols + 2 * nout) {}

std::size_t FunctionMatrix::colOfPosLiteral(std::size_t var) const {
  MCX_REQUIRE(var < nin_, "FunctionMatrix: bad variable");
  return var;
}

std::size_t FunctionMatrix::colOfNegLiteral(std::size_t var) const {
  MCX_REQUIRE(var < nin_, "FunctionMatrix: bad variable");
  return nin_ + var;
}

std::size_t FunctionMatrix::colOfConnection(std::size_t conn) const {
  MCX_REQUIRE(conn < conns_, "FunctionMatrix: bad connection column");
  return 2 * nin_ + conn;
}

std::size_t FunctionMatrix::colOfOutput(std::size_t o) const {
  MCX_REQUIRE(o < nout_, "FunctionMatrix: bad output");
  return 2 * nin_ + conns_ + o;
}

std::size_t FunctionMatrix::colOfOutputBar(std::size_t o) const {
  MCX_REQUIRE(o < nout_, "FunctionMatrix: bad output");
  return 2 * nin_ + conns_ + nout_ + o;
}

double FunctionMatrix::inclusionRatio() const {
  return mcx::inclusionRatio(usedSwitches(), dims());
}

FunctionMatrix FunctionMatrix::withInputPermutation(const std::vector<std::size_t>& perm) const {
  MCX_REQUIRE(perm.size() == nin_, "withInputPermutation: bad permutation size");
  FunctionMatrix r(nin_, nout_, products_, conns_);
  for (std::size_t row = 0; row < rows(); ++row) {
    for (std::size_t v = 0; v < nin_; ++v) {
      if (bits_.test(row, colOfPosLiteral(v))) r.bits_.set(row, r.colOfPosLiteral(perm[v]));
      if (bits_.test(row, colOfNegLiteral(v))) r.bits_.set(row, r.colOfNegLiteral(perm[v]));
    }
    for (std::size_t c = 2 * nin_; c < cols(); ++c)
      if (bits_.test(row, c)) r.bits_.set(row, c);
  }
  return r;
}

FunctionMatrix buildFunctionMatrix(const Cover& cover) {
  MCX_REQUIRE(!cover.empty() && cover.nout() > 0, "buildFunctionMatrix: empty cover");
  FunctionMatrix fm(cover.nin(), cover.nout(), cover.size(), 0);
  for (std::size_t i = 0; i < cover.size(); ++i) {
    const Cube& c = cover.cube(i);
    MCX_REQUIRE(!c.inputEmpty(), "buildFunctionMatrix: empty cube");
    for (std::size_t v = 0; v < cover.nin(); ++v) {
      switch (c.lit(v)) {
        case Lit::Pos: fm.bits().set(i, fm.colOfPosLiteral(v)); break;
        case Lit::Neg: fm.bits().set(i, fm.colOfNegLiteral(v)); break;
        default: break;
      }
    }
    c.outputBits().forEachSet([&](std::size_t o) { fm.bits().set(i, fm.colOfOutput(o)); });
  }
  for (std::size_t o = 0; o < cover.nout(); ++o) {
    fm.bits().set(fm.rowOfOutput(o), fm.colOfOutput(o));
    fm.bits().set(fm.rowOfOutput(o), fm.colOfOutputBar(o));
  }
  return fm;
}

}  // namespace mcx
