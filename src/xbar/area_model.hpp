// Crossbar area model of the paper.
//
// Two-level (NAND-AND) design: a cover with I inputs, O outputs and P
// products occupies rows = P + O (products, then one output-latch row per
// output) and cols = 2I + 2O (both input rails, then O and !O columns):
//   area = (P + O) * (2I + 2O).
// This is the formula implied by Tables I/II of the paper (e.g. rd53:
// (31+3)(10+6) = 544). Note: Fig. 3's prose counts one extra horizontal
// line (the input latch) and quotes 126 for the worked example; the tables
// — the actual evaluation — consistently exclude it, and so do we.
//
// Multi-level design: one row per NAND gate plus one per output; columns are
// both input rails, one multi-level connection column per gate that feeds
// another gate, and the output pairs:
//   area = (G + O) * (2I + C + 2O).
// The paper's Fig. 5 example (G=2, C=1, O=1) gives 3 x 19 = 57 (the text
// prints "59" with "3 horizontal and 19 vertical lines" — a typo).
#pragma once

#include <cstddef>

#include "logic/cover.hpp"
#include "netlist/nand_network.hpp"

namespace mcx {

struct CrossbarDims {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t area() const { return rows * cols; }

  bool operator==(const CrossbarDims&) const = default;
};

/// Two-level dims from the (I, O, P) statistics.
CrossbarDims twoLevelDims(std::size_t nin, std::size_t nout, std::size_t products);
/// Two-level dims of a cover.
CrossbarDims twoLevelDims(const Cover& cover);

/// Multi-level statistics of a NAND network.
struct MultiLevelStats {
  std::size_t gates = 0;         ///< G
  std::size_t connections = 0;   ///< C: gates feeding other gates
  std::size_t outputs = 0;       ///< O
  std::size_t inputs = 0;        ///< I
};
MultiLevelStats multiLevelStats(const NandNetwork& net);
CrossbarDims multiLevelDims(const MultiLevelStats& stats);
CrossbarDims multiLevelDims(const NandNetwork& net);

/// Inclusion Ratio: used switches / crossbar area (the paper's IR metric).
double inclusionRatio(std::size_t usedSwitches, const CrossbarDims& dims);

}  // namespace mcx
