// FunctionMatrix: the paper's FM — the required-switch pattern of a logic
// function on the crossbar, partitioned into minterm rows (FMm) and output
// rows (FMo).
//
// Column convention (Fig. 8): x1..xI, !x1..!xI, O1..Om, !O1..!Om.
// A product row has a 1 on the column of each literal and on column Oj for
// every output j that contains the product (the AND-plane switch that writes
// the product's NAND result into the output column). Output row j has 1s on
// Oj and !Oj (the output-latch switches).
#pragma once

#include <cstddef>

#include "logic/cover.hpp"
#include "netlist/nand_network.hpp"
#include "util/bit_matrix.hpp"
#include "xbar/area_model.hpp"

namespace mcx {

class FunctionMatrix {
public:
  FunctionMatrix() = default;
  FunctionMatrix(std::size_t nin, std::size_t nout, std::size_t products,
                 std::size_t extraConnectionCols);

  const BitMatrix& bits() const { return bits_; }
  BitMatrix& bits() { return bits_; }

  std::size_t rows() const { return bits_.rows(); }
  std::size_t cols() const { return bits_.cols(); }
  CrossbarDims dims() const { return {rows(), cols()}; }

  std::size_t nin() const { return nin_; }
  std::size_t nout() const { return nout_; }
  /// Number of minterm/gate rows (FMm). Output rows (FMo) follow.
  std::size_t numProductRows() const { return products_; }
  std::size_t numOutputRows() const { return nout_; }
  /// Multi-level connection columns (0 for two-level matrices).
  std::size_t numConnectionCols() const { return conns_; }

  // Column indices.
  std::size_t colOfPosLiteral(std::size_t var) const;
  std::size_t colOfNegLiteral(std::size_t var) const;
  std::size_t colOfConnection(std::size_t conn) const;
  std::size_t colOfOutput(std::size_t o) const;
  std::size_t colOfOutputBar(std::size_t o) const;

  /// Row index of output row @p o.
  std::size_t rowOfOutput(std::size_t o) const { return products_ + o; }

  /// Number of required active switches (the IR numerator).
  std::size_t usedSwitches() const { return bits_.count(); }
  double inclusionRatio() const;

  /// Permute the input variables: variable v uses the column pair of
  /// position perm[v]. Used by the column-permutation mapper extension.
  FunctionMatrix withInputPermutation(const std::vector<std::size_t>& perm) const;

private:
  std::size_t nin_ = 0;
  std::size_t nout_ = 0;
  std::size_t products_ = 0;
  std::size_t conns_ = 0;
  BitMatrix bits_;
};

/// Two-level FM of a cover (rows: cover cubes in order, then outputs).
FunctionMatrix buildFunctionMatrix(const Cover& cover);

}  // namespace mcx
