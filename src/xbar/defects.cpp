#include "xbar/defects.hpp"

#include <bit>

#include "util/error.hpp"

namespace mcx {

DefectMap::DefectMap(std::size_t rows, std::size_t cols)
    : open_(rows, cols), closed_(rows, cols) {}

DefectType DefectMap::type(std::size_t r, std::size_t c) const {
  if (closed_.test(r, c)) return DefectType::StuckClosed;
  if (open_.test(r, c)) return DefectType::StuckOpen;
  return DefectType::None;
}

void DefectMap::setType(std::size_t r, std::size_t c, DefectType t) {
  open_.set(r, c, t == DefectType::StuckOpen);
  closed_.set(r, c, t == DefectType::StuckClosed);
}

void DirtyRows::scan(const DefectMap& map) {
  all = false;
  rows.clear();
  stuckOpen = stuckClosed = 0;
  // Single pass: defect counts and row dirtiness from the same word loads.
  for (std::size_t r = 0; r < map.rows(); ++r) {
    const auto open = map.openBits().rowWords(r);
    const auto closed = map.closedBits().rowWords(r);
    BitMatrix::Word any = 0;
    std::size_t nOpen = 0, nClosed = 0;
    for (std::size_t i = 0; i < open.size(); ++i) {
      nOpen += static_cast<std::size_t>(std::popcount(open[i]));
      nClosed += static_cast<std::size_t>(std::popcount(closed[i]));
      any |= open[i] | closed[i];
    }
    stuckOpen += nOpen;
    stuckClosed += nClosed;
    if (any != 0) rows.push_back(r);
  }
}

bool DefectMap::rowPoisoned(std::size_t r) const { return closed_.rowCount(r) > 0; }

bool DefectMap::colPoisoned(std::size_t c) const { return closed_.colCount(c) > 0; }

void DefectMap::reshape(std::size_t rows, std::size_t cols) {
  open_.reshape(rows, cols);
  closed_.reshape(rows, cols);
}

void DefectMap::overlay(const DefectMap& other) {
  MCX_REQUIRE(rows() == other.rows() && cols() == other.cols(),
              "DefectMap::overlay: dimension mismatch");
  for (std::size_t r = 0; r < rows(); ++r) {
    const auto open = open_.rowWords(r);
    const auto closed = closed_.rowWords(r);
    const auto otherOpen = other.open_.rowWords(r);
    const auto otherClosed = other.closed_.rowWords(r);
    for (std::size_t i = 0; i < open.size(); ++i) {
      closed[i] |= otherClosed[i];
      open[i] = (open[i] | otherOpen[i]) & ~closed[i];
    }
  }
}

DefectMap DefectMap::sample(std::size_t rows, std::size_t cols, double stuckOpenRate,
                            double stuckClosedRate, Rng& rng) {
  DefectMap map;
  map.resample(rows, cols, stuckOpenRate, stuckClosedRate, rng);
  return map;
}

void DefectMap::resample(std::size_t rows, std::size_t cols, double stuckOpenRate,
                         double stuckClosedRate, Rng& rng) {
  MCX_REQUIRE(stuckOpenRate >= 0.0 && stuckClosedRate >= 0.0 &&
                  stuckOpenRate + stuckClosedRate <= 1.0,
              "DefectMap::resample: bad rates");
  open_.reshape(rows, cols);
  closed_.reshape(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double u = rng.uniform();
      if (u < stuckOpenRate)
        open_.set(r, c);
      else if (u < stuckOpenRate + stuckClosedRate)
        closed_.set(r, c);
    }
  }
}

BitMatrix crossbarMatrix(const DefectMap& defects) {
  BitMatrix cm;
  crossbarMatrixInto(defects, cm);
  return cm;
}

void crossbarMatrixInto(const DefectMap& defects, BitMatrix& cm) {
  const std::size_t rows = defects.rows();
  const std::size_t cols = defects.cols();
  cm.reshape(rows, cols);
  if (rows == 0 || cols == 0) return;

  const BitMatrix::Word tailMask = BitMatrix::tailMask(cols);

  // Functional = not stuck-open: one NOT per word instead of per-bit resets.
  for (std::size_t r = 0; r < rows; ++r) {
    const auto open = defects.openBits().rowWords(r);
    const auto dst = cm.rowWords(r);
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = ~open[i];
    dst[dst.size() - 1] &= tailMask;
  }

  if (defects.stuckClosedCount() == 0) return;
  // A stuck-closed crosspoint poisons its whole row and column. Fold all
  // closed rows into a column mask, then clear poisoned rows and columns
  // word-at-a-time.
  const std::size_t wordsPerRow = cm.rowWords(0).size();
  std::vector<BitMatrix::Word> colPoison(wordsPerRow, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto closed = defects.closedBits().rowWords(r);
    for (std::size_t i = 0; i < wordsPerRow; ++i) colPoison[i] |= closed[i];
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const auto dst = cm.rowWords(r);
    if (defects.closedBits().rowCount(r) > 0) {
      for (auto& w : dst) w = 0;
    } else {
      for (std::size_t i = 0; i < wordsPerRow; ++i) dst[i] &= ~colPoison[i];
    }
  }
}

}  // namespace mcx
