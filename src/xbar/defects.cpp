#include "xbar/defects.hpp"

#include "util/error.hpp"

namespace mcx {

DefectMap::DefectMap(std::size_t rows, std::size_t cols)
    : open_(rows, cols), closed_(rows, cols) {}

DefectType DefectMap::type(std::size_t r, std::size_t c) const {
  if (closed_.test(r, c)) return DefectType::StuckClosed;
  if (open_.test(r, c)) return DefectType::StuckOpen;
  return DefectType::None;
}

void DefectMap::setType(std::size_t r, std::size_t c, DefectType t) {
  open_.set(r, c, t == DefectType::StuckOpen);
  closed_.set(r, c, t == DefectType::StuckClosed);
}

bool DefectMap::rowPoisoned(std::size_t r) const { return closed_.rowCount(r) > 0; }

bool DefectMap::colPoisoned(std::size_t c) const { return closed_.colCount(c) > 0; }

DefectMap DefectMap::sample(std::size_t rows, std::size_t cols, double stuckOpenRate,
                            double stuckClosedRate, Rng& rng) {
  MCX_REQUIRE(stuckOpenRate >= 0.0 && stuckClosedRate >= 0.0 &&
                  stuckOpenRate + stuckClosedRate <= 1.0,
              "DefectMap::sample: bad rates");
  DefectMap map(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double u = rng.uniform();
      if (u < stuckOpenRate)
        map.setType(r, c, DefectType::StuckOpen);
      else if (u < stuckOpenRate + stuckClosedRate)
        map.setType(r, c, DefectType::StuckClosed);
    }
  }
  return map;
}

BitMatrix crossbarMatrix(const DefectMap& defects) {
  BitMatrix cm(defects.rows(), defects.cols(), true);
  for (std::size_t r = 0; r < defects.rows(); ++r)
    for (std::size_t c = 0; c < defects.cols(); ++c)
      if (defects.isStuckOpen(r, c)) cm.reset(r, c);
  for (std::size_t r = 0; r < defects.rows(); ++r)
    if (defects.rowPoisoned(r)) cm.setRow(r, false);
  for (std::size_t c = 0; c < defects.cols(); ++c)
    if (defects.colPoisoned(c)) cm.setCol(c, false);
  return cm;
}

}  // namespace mcx
