// Computation-cycle model of the crossbar state machines (Figs. 2 and 4).
//
// Two-level evaluation runs a fixed pipeline:
//   INA -> RI -> CFM -> EVM -> EVR -> INR -> SO          (7 steps)
// because all minterms evaluate simultaneously. The multi-level design
// trades area for time: gates evaluate one-by-one, each followed by a CR
// (copy result) step except the last:
//   INA -> RI -> CFM -> (EVM -> CR)^(G-1) -> EVM -> INR -> SO
// i.e. 2G + 4 steps. This module quantifies the paper's implicit area-delay
// tradeoff (the ablation-area-delay bench suite).
#pragma once

#include <cstddef>

#include "netlist/nand_network.hpp"
#include "xbar/area_model.hpp"

namespace mcx {

/// Steps of one two-level evaluation (constant).
std::size_t twoLevelCycles();

/// Steps of one multi-level evaluation of @p net (2G + 4).
std::size_t multiLevelCycles(const NandNetwork& net);

struct AreaDelay {
  std::size_t area = 0;
  std::size_t cycles = 0;
  /// The area-delay product, the usual figure of merit.
  std::size_t product() const { return area * cycles; }
};

AreaDelay twoLevelAreaDelay(const Cover& cover);
AreaDelay multiLevelAreaDelay(const NandNetwork& net);

}  // namespace mcx
