#include "xbar/multilevel_layout.hpp"

#include <map>
#include <sstream>

#include "util/error.hpp"

namespace mcx {

MultiLevelLayout buildMultiLevelLayout(NandNetwork network) {
  MCX_REQUIRE(network.gateCount() > 0 && network.numOutputs() > 0,
              "buildMultiLevelLayout: empty network");

  // Which gates need a connection column (fan out to other gates)?
  std::map<NodeId, std::size_t> gatePos;  // gate id -> position in gates()
  for (std::size_t i = 0; i < network.gates().size(); ++i) gatePos[network.gates()[i]] = i;

  std::vector<bool> feedsGate(network.gates().size(), false);
  for (NodeId g : network.gates())
    for (const auto& f : network.fanins(g))
      if (!network.isPi(f.node)) feedsGate[gatePos.at(f.node)] = true;

  MultiLevelLayout layout;
  layout.connOfGate.assign(network.gates().size(), MultiLevelLayout::kNoConnection);
  std::size_t nextConn = 0;
  for (std::size_t i = 0; i < network.gates().size(); ++i)
    if (feedsGate[i]) layout.connOfGate[i] = nextConn++;

  layout.fm = FunctionMatrix(network.numPis(), network.numOutputs(), network.gateCount(),
                             nextConn);
  FunctionMatrix& fm = layout.fm;

  for (std::size_t i = 0; i < network.gates().size(); ++i) {
    const NodeId g = network.gates()[i];
    for (const auto& f : network.fanins(g)) {
      if (network.isPi(f.node)) {
        // PI index equals its node id by construction order.
        const std::size_t v = static_cast<std::size_t>(f.node);
        fm.bits().set(i, f.invert ? fm.colOfNegLiteral(v) : fm.colOfPosLiteral(v));
      } else {
        const std::size_t conn = layout.connOfGate[gatePos.at(f.node)];
        MCX_REQUIRE(conn != MultiLevelLayout::kNoConnection,
                    "buildMultiLevelLayout: missing connection column");
        fm.bits().set(i, fm.colOfConnection(conn));
      }
    }
    if (layout.connOfGate[i] != MultiLevelLayout::kNoConnection)
      fm.bits().set(i, fm.colOfConnection(layout.connOfGate[i]));
  }
  for (std::size_t o = 0; o < network.numOutputs(); ++o) {
    const std::size_t gi = gatePos.at(network.outputNode(o));
    fm.bits().set(gi, fm.colOfOutput(o));
    fm.bits().set(fm.rowOfOutput(o), fm.colOfOutput(o));
    fm.bits().set(fm.rowOfOutput(o), fm.colOfOutputBar(o));
  }

  layout.network = std::move(network);
  return layout;
}

std::string MultiLevelLayout::toAsciiDiagram() const {
  std::ostringstream os;
  os << "multi-level crossbar: gates=" << network.gateCount()
     << " connections=" << fm.numConnectionCols() << " outputs=" << network.numOutputs() << '\n';
  os << fm.bits().toString('.', '#');
  os << "rows=" << fm.rows() << " cols=" << fm.cols() << " area=" << fm.dims().area()
     << " switches=" << fm.usedSwitches() << '\n';
  return os.str();
}

}  // namespace mcx
