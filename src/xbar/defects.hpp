// Defect model of the paper (Section IV).
//
// Each crosspoint is independently defective: stuck-at-open (permanently
// R_OFF — usable wherever a *disabled* switch is needed, fatal where an
// *active* one is) or stuck-at-closed (permanently R_ON — poisons its whole
// horizontal and vertical line: the line initialization and NAND evaluation
// both read the forced logic 0).
//
// The crossbar matrix (CM) follows Fig. 8: entry 1 = functional crosspoint
// (matches both 1 and 0 in the FM), entry 0 = unusable (matches only 0).
#pragma once

#include <cstddef>
#include <vector>

#include "util/bit_matrix.hpp"
#include "util/rng.hpp"

namespace mcx {

enum class DefectType : unsigned char { None, StuckOpen, StuckClosed };

class DefectMap;

/// Sparse description of how a defect sample perturbs the clean crossbar:
/// which crossbar-matrix rows can differ from the all-functional (all-ones)
/// row, plus the sample's defect counts. Produced by DefectModels alongside
/// the DefectMap so the mapping hot path can rebuild only what the sample
/// actually touched (see MappingContext in map/matching.hpp).
struct DirtyRows {
  /// Conservative mode: treat every row as dirty (rows is then ignored).
  bool all = true;
  /// Rows containing at least one defect, ascending, unique. Only
  /// meaningful when !all.
  std::vector<std::size_t> rows;
  std::size_t stuckOpen = 0;    ///< stuck-open defects in the sample
  std::size_t stuckClosed = 0;  ///< stuck-closed defects in the sample

  void markAll() {
    all = true;
    rows.clear();
    stuckOpen = stuckClosed = 0;
  }
  /// Derive the exact dirty set from a finished map (a word-level row scan,
  /// O(area/64) — the model-agnostic fallback behind
  /// DefectModel::generateTracked).
  void scan(const DefectMap& map);
};

class DefectMap {
public:
  DefectMap() = default;
  DefectMap(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return open_.rows(); }
  std::size_t cols() const { return open_.cols(); }

  DefectType type(std::size_t r, std::size_t c) const;
  void setType(std::size_t r, std::size_t c, DefectType t);

  bool isStuckOpen(std::size_t r, std::size_t c) const { return open_.test(r, c); }
  bool isStuckClosed(std::size_t r, std::size_t c) const { return closed_.test(r, c); }

  /// True iff the row contains a stuck-at-closed crosspoint (line unusable).
  bool rowPoisoned(std::size_t r) const;
  /// True iff the column contains a stuck-at-closed crosspoint.
  bool colPoisoned(std::size_t c) const;

  std::size_t stuckOpenCount() const { return open_.count(); }
  std::size_t stuckClosedCount() const { return closed_.count(); }

  const BitMatrix& openBits() const { return open_; }
  const BitMatrix& closedBits() const { return closed_; }

  /// Mutable word-level access for the sparse samplers' placement loop
  /// (hoisting the per-bit bounds checks out of an O(defects) hot path).
  /// Callers own the invariant that a crosspoint is never both stuck-open
  /// and stuck-closed.
  BitMatrix& mutableOpenBits() { return open_; }
  BitMatrix& mutableClosedBits() { return closed_; }

  /// Independent uniform per-crosspoint sampling (the paper's defect
  /// generation: "assigning an independent defect probability/rate to each
  /// crosspoint that shows a uniform distribution").
  static DefectMap sample(std::size_t rows, std::size_t cols, double stuckOpenRate,
                          double stuckClosedRate, Rng& rng);

  /// In-place variant of sample(): identical draw sequence, but reuses the
  /// existing bit buffers (per-thread scratch arenas in the Monte Carlo
  /// engine avoid a pair of allocations per sample).
  void resample(std::size_t rows, std::size_t cols, double stuckOpenRate,
                double stuckClosedRate, Rng& rng);

  /// Resize to rows x cols with every crosspoint functional, reusing the
  /// existing allocations (scratch-arena entry point for DefectModels).
  void reshape(std::size_t rows, std::size_t cols);

  /// Union this map with @p other (same dimensions): a crosspoint is
  /// defective if it is defective in either map, and stuck-closed dominates
  /// stuck-open (the harsher failure wins). CompositeModel layering.
  void overlay(const DefectMap& other);

private:
  BitMatrix open_;
  BitMatrix closed_;
};

/// The paper's CM: functional = 1; stuck-open crosspoints = 0; stuck-closed
/// crosspoints additionally clear their entire row and column.
BitMatrix crossbarMatrix(const DefectMap& defects);

/// In-place variant of crossbarMatrix(): word-parallel derivation into a
/// reusable buffer (one word op per 64 crosspoints instead of a per-bit
/// test/reset loop).
void crossbarMatrixInto(const DefectMap& defects, BitMatrix& cm);

}  // namespace mcx
