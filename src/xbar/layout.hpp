// TwoLevelLayout: a cover bound to its crossbar realization (Fig. 3 of the
// paper) — the function matrix plus the semantic information needed by the
// simulator and the pretty printer.
#pragma once

#include <string>

#include "logic/cover.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {

struct TwoLevelLayout {
  Cover cover;        ///< product rows of the FM, in row order
  FunctionMatrix fm;  ///< required-switch pattern

  CrossbarDims dims() const { return fm.dims(); }

  /// ASCII rendering in the style of Fig. 3: column header with x / !x / O /
  /// !O labels, '#' for an active switch, '.' for a disabled one.
  std::string toAsciiDiagram() const;
};

/// Build the layout of a cover (choosing the cover as-is; minimize first if
/// a minimal crossbar is desired).
TwoLevelLayout buildTwoLevelLayout(Cover cover);

/// The paper's "dual" optimization: synthesize both f and its complement
/// (the crossbar produces both polarities for free) and keep whichever needs
/// the smaller crossbar.
struct DualChoice {
  TwoLevelLayout layout;
  bool usedComplement = false;
  std::size_t areaOriginal = 0;
  std::size_t areaComplement = 0;
};
DualChoice chooseDual(const Cover& original, const Cover& complement);

}  // namespace mcx
