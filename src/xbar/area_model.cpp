#include "xbar/area_model.hpp"

#include "util/error.hpp"

namespace mcx {

CrossbarDims twoLevelDims(std::size_t nin, std::size_t nout, std::size_t products) {
  MCX_REQUIRE(nin > 0 && nout > 0 && products > 0, "twoLevelDims: empty shape");
  return {products + nout, 2 * nin + 2 * nout};
}

CrossbarDims twoLevelDims(const Cover& cover) {
  return twoLevelDims(cover.nin(), cover.nout(), cover.size());
}

MultiLevelStats multiLevelStats(const NandNetwork& net) {
  MultiLevelStats s;
  s.gates = net.gateCount();
  s.connections = net.interconnectCount();
  s.outputs = net.numOutputs();
  s.inputs = net.numPis();
  return s;
}

CrossbarDims multiLevelDims(const MultiLevelStats& s) {
  MCX_REQUIRE(s.gates > 0 && s.outputs > 0, "multiLevelDims: empty network");
  return {s.gates + s.outputs, 2 * s.inputs + s.connections + 2 * s.outputs};
}

CrossbarDims multiLevelDims(const NandNetwork& net) {
  return multiLevelDims(multiLevelStats(net));
}

double inclusionRatio(std::size_t usedSwitches, const CrossbarDims& dims) {
  MCX_REQUIRE(dims.area() > 0, "inclusionRatio: empty crossbar");
  return static_cast<double>(usedSwitches) / static_cast<double>(dims.area());
}

}  // namespace mcx
