// MultiLevelLayout: a NAND network bound to its crossbar realization
// (Fig. 5 of the paper).
//
// Row order: gates in topological order (they are evaluated one-by-one, the
// EVM/CR loop of the multi-level state machine), then one output-latch row
// per output. Each gate that feeds another gate owns one multi-level
// connection column; a gate row has switches on its fanin literal columns,
// its fanin connection columns, its own connection column (to write its
// result) and the output column of every network output it drives.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "netlist/nand_network.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {

struct MultiLevelLayout {
  static constexpr std::size_t kNoConnection = std::numeric_limits<std::size_t>::max();

  NandNetwork network;
  FunctionMatrix fm;
  /// Gate (by position in network.gates()) -> connection column index
  /// (relative, see FunctionMatrix::colOfConnection) or kNoConnection.
  std::vector<std::size_t> connOfGate;

  CrossbarDims dims() const { return fm.dims(); }

  std::string toAsciiDiagram() const;
};

MultiLevelLayout buildMultiLevelLayout(NandNetwork network);

}  // namespace mcx
