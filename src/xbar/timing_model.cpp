#include "xbar/timing_model.hpp"

#include "util/error.hpp"

namespace mcx {

std::size_t twoLevelCycles() { return 7; }

std::size_t multiLevelCycles(const NandNetwork& net) {
  MCX_REQUIRE(net.gateCount() > 0, "multiLevelCycles: empty network");
  return 2 * net.gateCount() + 4;
}

AreaDelay twoLevelAreaDelay(const Cover& cover) {
  return {twoLevelDims(cover).area(), twoLevelCycles()};
}

AreaDelay multiLevelAreaDelay(const NandNetwork& net) {
  return {multiLevelDims(net).area(), multiLevelCycles(net)};
}

}  // namespace mcx
