// bench::Driver — the one multiplexed bench front end.
//
// Every reproduction/ablation bench used to be its own binary with its own
// copy-pasted argv loop; now each is a Suite registered with the global
// driver (MCX_BENCH_SUITE in its source file) and dispatched as
// `mcx_bench <suite> [flags]`. The driver itself handles discovery
// (--list-suites, --list-mappers, --list-scenarios, --list-circuits,
// --help); everything
// after the suite name goes to the suite, which parses it with the shared
// cli::ArgParser (CommonOptions covers the knobs every suite shares).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "util/arg_parser.hpp"

namespace mcx::bench {

struct Suite {
  std::string name;     ///< the `mcx_bench <name>` key
  std::string summary;  ///< one line for --list-suites
  /// Runs the suite on the args after the suite name; returns the process
  /// exit code (0 = pass, 1 = self-check failure, 2 = usage error).
  std::function<int(const std::vector<std::string>& args)> run;
};

/// Flags shared by (almost) every suite: registered into the suite's
/// ArgParser with addTo(), resolved with the *Or accessors. samplesOr and
/// jsonOr honor the historical env knobs (flag beats MCX_SAMPLES /
/// MCX_BENCH_JSON beats the suite's default); seedOr/threadsOr have no env
/// counterpart — flag or fallback.
struct CommonOptions {
  std::optional<std::size_t> samples;
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> threads;
  std::optional<std::string> json;

  void addTo(cli::ArgParser& parser);  ///< all four flags
  // Granular registration for suites that only expose some of the knobs.
  void addSamplesTo(cli::ArgParser& parser);
  void addSeedTo(cli::ArgParser& parser);
  void addThreadsTo(cli::ArgParser& parser);
  void addJsonTo(cli::ArgParser& parser);
  std::size_t samplesOr(std::size_t fallback) const;      ///< --samples, MCX_SAMPLES, fallback
  std::uint64_t seedOr(std::uint64_t fallback) const;     ///< --seed, fallback
  std::size_t threadsOr(std::size_t fallback = 0) const;  ///< --threads, fallback (0 = hw)
  std::string jsonOr(const std::string& fallback) const;  ///< --json, MCX_BENCH_JSON, fallback
};

class Driver {
public:
  /// The process-wide driver all MCX_BENCH_SUITE registrations target.
  static Driver& global();

  /// Register a suite; throws mcx::InvalidArgument on a duplicate name.
  void add(Suite suite);

  const std::vector<Suite>& suites() const { return suites_; }
  const Suite* find(const std::string& name) const;

  /// Dispatch `mcx_bench` argv (args excludes the program name): the
  /// listing/help flags, then the named suite. Listings and help go to
  /// @p out, usage errors to @p err. Returns the process exit code.
  int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) const;
  int run(int argc, char** argv, std::ostream& out, std::ostream& err) const;

  void printUsage(std::ostream& out) const;
  void listSuites(std::ostream& out) const;

private:
  std::vector<Suite> suites_;
};

/// One-liner self-registration into Driver::global() (file-scope static in
/// each suite's translation unit).
struct SuiteRegistrar {
  SuiteRegistrar(std::string name, std::string summary,
                 std::function<int(const std::vector<std::string>&)> run);
};

/// Print "name  —  summary" lines for every registered mapper / scenario /
/// circuit preset (the --list-mappers / --list-scenarios / --list-circuits
/// payloads; also used by the suites' own --list flags).
void listMappers(std::ostream& out);
void listScenarios(std::ostream& out);
void listCircuits(std::ostream& out);

/// Shared suite prologue: parse @p args (help/listing flags to std::cout,
/// usage errors to std::cerr). Returns the exit code to propagate — 0 after
/// --help or an action flag, 2 on a usage error — or nullopt to continue
/// into the suite body.
std::optional<int> parseSuiteArgs(cli::ArgParser& parser, const std::vector<std::string>& args);

}  // namespace mcx::bench

/// Register a suite: MCX_BENCH_SUITE(table2, "Table II reproduction") with
/// `int runTable2(const std::vector<std::string>& args)` in scope expands to
/// a static registrar. The identifier doubles as the suite name with
/// underscores turned into dashes by the caller spelling it out instead.
#define MCX_BENCH_SUITE(name, summary, fn) \
  static const ::mcx::bench::SuiteRegistrar mcxBenchSuiteRegistrar_##fn{name, summary, fn}
