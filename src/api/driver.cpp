#include "api/driver.hpp"

#include <algorithm>
#include <iostream>

#include "circuit/registry.hpp"
#include "map/registry.hpp"
#include "scenario/registry.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace mcx::bench {

void CommonOptions::addTo(cli::ArgParser& parser) {
  addSamplesTo(parser);
  addSeedTo(parser);
  addThreadsTo(parser);
  addJsonTo(parser);
}

void CommonOptions::addSamplesTo(cli::ArgParser& parser) {
  parser.add("--samples", &samples, "N", "Monte Carlo samples per cell (env MCX_SAMPLES)");
}

void CommonOptions::addSeedTo(cli::ArgParser& parser) {
  parser.add("--seed", &seed, "S", "root RNG seed");
}

void CommonOptions::addThreadsTo(cli::ArgParser& parser) {
  parser.add("--threads", &threads, "N", "worker threads (0 = hardware concurrency)");
}

void CommonOptions::addJsonTo(cli::ArgParser& parser) {
  parser.add("--json", &json, "PATH", "machine-readable output path (env MCX_BENCH_JSON)");
}

std::size_t CommonOptions::samplesOr(std::size_t fallback) const {
  return samples.value_or(envSizeT("MCX_SAMPLES", fallback));
}

std::uint64_t CommonOptions::seedOr(std::uint64_t fallback) const {
  return seed.value_or(fallback);
}

std::size_t CommonOptions::threadsOr(std::size_t fallback) const {
  return threads.value_or(fallback);
}

std::string CommonOptions::jsonOr(const std::string& fallback) const {
  if (json.has_value()) return *json;
  const char* env = std::getenv("MCX_BENCH_JSON");
  return (env != nullptr && *env != '\0') ? env : fallback;
}

Driver& Driver::global() {
  static Driver driver;
  return driver;
}

void Driver::add(Suite suite) {
  MCX_REQUIRE(!suite.name.empty() && suite.run != nullptr,
              "bench suite needs a name and a run function");
  MCX_REQUIRE(find(suite.name) == nullptr, "duplicate bench suite " + suite.name);
  suites_.push_back(std::move(suite));
  std::sort(suites_.begin(), suites_.end(),
            [](const Suite& a, const Suite& b) { return a.name < b.name; });
}

const Suite* Driver::find(const std::string& name) const {
  for (const Suite& suite : suites_)
    if (suite.name == name) return &suite;
  return nullptr;
}

void Driver::listSuites(std::ostream& out) const {
  for (const Suite& suite : suites_) out << suite.name << "  —  " << suite.summary << "\n";
}

void listMappers(std::ostream& out) {
  for (const MapperPreset& preset : mapperPresets())
    out << preset.name << "  —  " << preset.summary << "\n";
}

void listScenarios(std::ostream& out) {
  for (const ScenarioPreset& preset : scenarioPresets())
    out << preset.name << "  —  " << preset.summary << "\n";
}

void listCircuits(std::ostream& out) {
  for (const CircuitPreset& preset : circuitPresets())
    out << preset.name << "  —  " << preset.summary << "\n";
}

void Driver::printUsage(std::ostream& out) const {
  out << "usage: mcx_bench <suite> [suite flags]\n"
         "       mcx_bench --list-suites | --list-mappers | --list-scenarios |\n"
         "                 --list-circuits\n"
         "\n"
         "One multiplexed driver for every bench of the repo. Pick a suite and\n"
         "pass `--help` after its name for the suite's own flags.\n"
         "\n"
         "suites:\n";
  listSuites(out);
}

int Driver::run(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) const {
  if (args.empty()) {
    printUsage(err);
    return 2;
  }
  const std::string& first = args[0];
  if (first == "--help" || first == "-h") {
    printUsage(out);
    return 0;
  }
  if (first == "--list-suites") {
    listSuites(out);
    return 0;
  }
  if (first == "--list-mappers") {
    listMappers(out);
    return 0;
  }
  if (first == "--list-scenarios") {
    listScenarios(out);
    return 0;
  }
  if (first == "--list-circuits") {
    listCircuits(out);
    return 0;
  }
  if (first.starts_with("-")) {
    err << "mcx_bench: unknown flag " << first << " (try --help)\n";
    return 2;
  }
  const Suite* suite = find(first);
  if (suite == nullptr) {
    err << "mcx_bench: unknown suite \"" << first << "\"; available suites:\n";
    listSuites(err);
    return 2;
  }
  return suite->run(std::vector<std::string>(args.begin() + 1, args.end()));
}

int Driver::run(int argc, char** argv, std::ostream& out, std::ostream& err) const {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<std::size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run(args, out, err);
}

std::optional<int> parseSuiteArgs(cli::ArgParser& parser,
                                  const std::vector<std::string>& args) {
  switch (parser.parse(args, std::cout, std::cerr)) {
    case cli::ArgParser::Outcome::Handled: return 0;
    case cli::ArgParser::Outcome::Error: return 2;
    case cli::ArgParser::Outcome::Ok: break;
  }
  return std::nullopt;
}

SuiteRegistrar::SuiteRegistrar(std::string name, std::string summary,
                               std::function<int(const std::vector<std::string>&)> run) {
  Driver::global().add({std::move(name), std::move(summary), std::move(run)});
}

}  // namespace mcx::bench
