#include "api/experiment.hpp"

#include <sstream>
#include <utility>

#include "circuit/cache.hpp"
#include "circuit/registry.hpp"
#include "map/registry.hpp"
#include "obs/trace.hpp"
#include "scenario/registry.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace mcx {

void ExperimentResult::writeJson(JsonWriter& json) const {
  json.beginObject();
  json.field("circuit", circuit);
  json.field("circuit_spec", circuitSpec);
  json.field("mapper", mapper);
  json.field("scenario", scenario);
  json.field("rows", rows);
  json.field("cols", cols);
  json.field("area", area());
  json.field("samples", outcome.samples);
  json.field("completed", outcome.completed);
  json.field("successes", outcome.successes);
  json.field("success_rate", successRate());
  if (graded) {
    json.field("epsilon", config.epsilon);
    json.field("epsilon_accepted", outcome.epsilonAccepted);
    json.field("functional_yield", functionalYield());
    json.field("rescued", outcome.rescued);
    json.field("mean_realized_error", meanRealizedError());
  }
  json.field("aborted", outcome.aborted);
  json.field("abort_reason", outcome.abortReason);
  json.field("seed", config.seed);
  json.field("threads", config.threads);
  json.field("total_seconds", outcome.totalSeconds);
  json.field("mean_seconds", meanSeconds());
  json.field("synth_millis", synthesisMillis);
  json.field("mc_run_millis", mcRunMillis);
  json.field("total_backtracks", outcome.totalBacktracks);
  if (config.timePerSample) json.field("mean_map_millis", outcome.perSampleMillis.mean);
  json.endObject();
}

std::string ExperimentResult::toJson() const {
  std::ostringstream out;
  JsonWriter json(out);
  writeJson(json);
  return out.str();
}

ExperimentBuilder& ExperimentBuilder::circuit(const std::string& nameOrSpec) {
  return circuit(makeCircuitSpec(nameOrSpec));
}

ExperimentBuilder& ExperimentBuilder::circuit(const CircuitSpec& spec) {
  spec_ = spec;
  circuitLabel_ = spec.displayLabel();
  fm_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::circuit(const std::string& label, const Cover& cover) {
  CircuitSpec spec;
  spec.source = CircuitSpec::Source::Cover;
  spec.cover = cover;
  spec.label = label;
  return circuit(spec);
}

ExperimentBuilder& ExperimentBuilder::circuit(const std::string& label, FunctionMatrix fm) {
  circuitLabel_ = label;
  spec_.reset();
  fm_ = std::move(fm);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::multiLevel(bool on) {
  multiLevel_ = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::cache(bool on) {
  cache_ = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::mapper(const std::string& nameOrSpec) {
  mapper_ = makeMapper(nameOrSpec);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::mapper(std::shared_ptr<const IMapper> mapper) {
  MCX_REQUIRE(mapper != nullptr, "ExperimentBuilder: null mapper");
  mapper_ = std::move(mapper);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::scenario(const std::string& nameOrSpec, double rate) {
  return scenario(makeScenario(nameOrSpec, rate));
}

ExperimentBuilder& ExperimentBuilder::scenario(std::shared_ptr<const DefectModel> model) {
  MCX_REQUIRE(model != nullptr, "ExperimentBuilder: null scenario model");
  scenarioLabel_ = model->describe();
  config_.model = std::move(model);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::legacyRates(double stuckOpen, double stuckClosed) {
  config_.model.reset();
  config_.stuckOpenRate = stuckOpen;
  config_.stuckClosedRate = stuckClosed;
  scenarioLabel_.clear();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::samples(std::size_t n) {
  config_.samples = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::seed(std::uint64_t seed) {
  config_.seed = seed;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::threads(std::size_t threads) {
  config_.threads = threads;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::spareRows(std::size_t spares) {
  config_.spareRows = spares;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::verifyMappings(bool on) {
  config_.verify = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::timePerSample(bool on) {
  config_.timePerSample = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::keepMappings(bool on) {
  config_.keepMappings = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::errorBudget(double epsilon) {
  MCX_REQUIRE(epsilon >= 0.0 && epsilon <= 1.0,
              "ExperimentBuilder: error budget must be in [0, 1]");
  config_.epsilon = epsilon;
  errorBudgetDeclared_ = true;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::deadline(double millis) {
  MCX_REQUIRE(millis > 0, "ExperimentBuilder: deadline must be positive");
  deadlineMillis_ = millis;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::cancelToken(std::shared_ptr<CancelToken> token) {
  MCX_REQUIRE(token != nullptr, "ExperimentBuilder: null cancel token");
  config_.cancel = std::move(token);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::pool(ExecutorPool* pool) {
  config_.pool = pool;
  return *this;
}

ExperimentResult ExperimentBuilder::run() const {
  MCX_REQUIRE(spec_.has_value() || fm_.has_value(),
              "ExperimentBuilder: no circuit declared");
  MCX_REQUIRE(mapper_ != nullptr, "ExperimentBuilder: no mapper declared");

  ExperimentResult result;
  result.circuit = circuitLabel_;

  FunctionMatrix fm;
  if (fm_.has_value()) {
    fm = *fm_;
  } else {
    Stopwatch synthWatch;
    obs::Span synthSpan("synthesis");
    CircuitSpec spec = *spec_;
    if (multiLevel_.has_value())
      spec.realize = *multiLevel_ ? CircuitSpec::Realize::MultiLevel
                                  : CircuitSpec::Realize::TwoLevel;
    // Inline covers bypass the process-global cache: a long-running sweep
    // over distinct covers would otherwise accumulate one immortal entry
    // (cover + FM + layout) per cover, and pay a serialization per run()
    // just to key it. Named declarations (registry/file/gen/...) are a
    // bounded set and stay memoized.
    const bool memoize = cache_ && spec.source != CircuitSpec::Source::Cover;
    const std::shared_ptr<const Circuit> compiled = compileCircuit(spec, memoize);
    fm = compiled->fm;
    result.circuitSpec = spec.canonical();
    synthSpan.finish();
    result.synthesisMillis = synthWatch.millis();
  }

  result.mapper = mapper_->name();
  result.scenario = config_.model ? scenarioLabel_ : std::string("iid (legacy rates)");
  result.rows = fm.rows();
  result.cols = fm.cols();

  // The deadline clock starts here, after synthesis: the budget covers the
  // Monte Carlo run the caller declared. (The service arms its own token at
  // admission instead, so queueing and synthesis count against service-level
  // deadlines.)
  DefectExperimentConfig config = config_;
  if (deadlineMillis_.has_value()) {
    if (config.cancel == nullptr) config.cancel = std::make_shared<CancelToken>();
    config.cancel->setDeadlineAfterMillis(*deadlineMillis_);
  }
  result.config = config;
  result.graded = errorBudgetDeclared_;
  Stopwatch mcWatch;
  result.outcome = runDefectExperiment(fm, *mapper_, config);
  result.mcRunMillis = mcWatch.millis();
  return result;
}

}  // namespace mcx
