#include "api/experiment.hpp"

#include <sstream>
#include <utility>

#include "benchdata/registry.hpp"
#include "map/registry.hpp"
#include "netlist/nand_mapper.hpp"
#include "scenario/registry.hpp"
#include "util/error.hpp"
#include "xbar/multilevel_layout.hpp"

namespace mcx {

void ExperimentResult::writeJson(JsonWriter& json) const {
  json.beginObject();
  json.field("circuit", circuit);
  json.field("mapper", mapper);
  json.field("scenario", scenario);
  json.field("rows", rows);
  json.field("cols", cols);
  json.field("area", area());
  json.field("samples", outcome.samples);
  json.field("successes", outcome.successes);
  json.field("success_rate", successRate());
  json.field("seed", config.seed);
  json.field("threads", config.threads);
  json.field("total_seconds", outcome.totalSeconds);
  json.field("mean_seconds", meanSeconds());
  json.field("total_backtracks", outcome.totalBacktracks);
  if (config.timePerSample) json.field("mean_map_millis", outcome.perSampleMillis.mean);
  json.endObject();
}

std::string ExperimentResult::toJson() const {
  std::ostringstream out;
  JsonWriter json(out);
  writeJson(json);
  return out.str();
}

ExperimentBuilder& ExperimentBuilder::circuit(const std::string& registryName) {
  circuitLabel_ = registryName;
  cover_ = loadBenchmarkFast(registryName).cover;
  fm_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::circuit(const std::string& label, const Cover& cover) {
  circuitLabel_ = label;
  cover_ = cover;
  fm_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::circuit(const std::string& label, FunctionMatrix fm) {
  circuitLabel_ = label;
  cover_.reset();
  fm_ = std::move(fm);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::multiLevel(bool on) {
  multiLevel_ = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::mapper(const std::string& nameOrSpec) {
  mapper_ = makeMapper(nameOrSpec);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::mapper(std::shared_ptr<const IMapper> mapper) {
  MCX_REQUIRE(mapper != nullptr, "ExperimentBuilder: null mapper");
  mapper_ = std::move(mapper);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::scenario(const std::string& nameOrSpec, double rate) {
  return scenario(makeScenario(nameOrSpec, rate));
}

ExperimentBuilder& ExperimentBuilder::scenario(std::shared_ptr<const DefectModel> model) {
  MCX_REQUIRE(model != nullptr, "ExperimentBuilder: null scenario model");
  scenarioLabel_ = model->describe();
  config_.model = std::move(model);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::legacyRates(double stuckOpen, double stuckClosed) {
  config_.model.reset();
  config_.stuckOpenRate = stuckOpen;
  config_.stuckClosedRate = stuckClosed;
  scenarioLabel_.clear();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::samples(std::size_t n) {
  config_.samples = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::seed(std::uint64_t seed) {
  config_.seed = seed;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::threads(std::size_t threads) {
  config_.threads = threads;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::spareRows(std::size_t spares) {
  config_.spareRows = spares;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::verifyMappings(bool on) {
  config_.verify = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::timePerSample(bool on) {
  config_.timePerSample = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::keepMappings(bool on) {
  config_.keepMappings = on;
  return *this;
}

ExperimentResult ExperimentBuilder::run() const {
  MCX_REQUIRE(cover_.has_value() || fm_.has_value(),
              "ExperimentBuilder: no circuit declared");
  MCX_REQUIRE(mapper_ != nullptr, "ExperimentBuilder: no mapper declared");

  FunctionMatrix fm = [&] {
    if (fm_.has_value()) return *fm_;
    if (multiLevel_) return buildMultiLevelLayout(mapToNand(*cover_)).fm;
    return buildFunctionMatrix(*cover_);
  }();

  ExperimentResult result;
  result.circuit = circuitLabel_;
  result.mapper = mapper_->name();
  result.scenario = config_.model ? scenarioLabel_ : std::string("iid (legacy rates)");
  result.rows = fm.rows();
  result.cols = fm.cols();
  result.config = config_;
  result.outcome = runDefectExperiment(fm, *mapper_, config_);
  return result;
}

}  // namespace mcx
