// The mcx:: facade: one builder-style entry point for defect-mapping
// experiments.
//
// Call sites used to assemble a DefectExperimentConfig field by field, load
// circuits by hand and hard-wire mapper objects; the builder chains the
// whole declaration — circuit, mapper, scenario, knobs — resolves names
// through the circuit, mapper and scenario registries, and returns a typed
// ExperimentResult with uniform JSON serialization:
//
//   const ExperimentResult r = ExperimentBuilder()
//                                  .circuit("rd53")
//                                  .mapper("hba")
//                                  .scenario("clustered", 0.08)
//                                  .samples(200)
//                                  .seed(42)
//                                  .run();
//
// Circuits are full pipeline declarations (circuit/spec.hpp): registry
// names, .pla files, inline PLA/SOP text, generators — with synthesis and
// realization knobs — compiled through the memoized synthesis front-end
// (circuit/cache.hpp), so re-running a declaration skips re-synthesis:
//
//   ExperimentBuilder().circuit("file:examples/data/adder.pla").mapper("hba")...
//
// The builder is a declaration, not an engine: run() delegates to
// runDefectExperiment, so results are bit-identical to hand-built configs —
// including the legacy i.i.d. rate-pair path (legacyRates), the regression
// anchor of the committed BENCH_defect_mc.json success counts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "circuit/spec.hpp"
#include "logic/cover.hpp"
#include "map/matching.hpp"
#include "mc/defect_experiment.hpp"
#include "scenario/defect_model.hpp"
#include "util/json_writer.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {

/// Typed outcome of an ExperimentBuilder run: the declaration that produced
/// it (labels, dimensions, resolved config) plus the Monte Carlo outcome.
struct ExperimentResult {
  std::string circuit;
  std::string circuitSpec;    ///< canonical pipeline declaration ("" for raw FMs)
  std::string mapper;
  std::string scenario;       ///< model description, or "iid (legacy rates)"
  std::size_t rows = 0;
  std::size_t cols = 0;
  DefectExperimentConfig config;    ///< the resolved engine configuration
  DefectExperimentResult outcome;
  /// An error budget was declared (errorBudget()): the graded counts
  /// (epsilon, epsilon_accepted, functional_yield, rescued,
  /// mean_realized_error) join the JSON. Off for legacy declarations so
  /// their serialization stays byte-identical.
  bool graded = false;
  /// Stage split of run(): circuit compile/cache time vs Monte Carlo time.
  /// A cache hit shows up as synthesisMillis ≈ 0.
  double synthesisMillis = 0;
  double mcRunMillis = 0;

  std::size_t area() const { return rows * cols; }
  double successRate() const { return outcome.successRate(); }
  double meanSeconds() const { return outcome.meanSeconds(); }
  double functionalYield() const { return outcome.functionalYield(); }
  double meanRealizedError() const { return outcome.meanRealizedError(); }

  /// Uniform serialization: one object with the declaration and the
  /// outcome, identical keys for every mapper/scenario/circuit combination.
  void writeJson(JsonWriter& json) const;
  std::string toJson() const;
};

class ExperimentBuilder {
public:
  // --- circuit ------------------------------------------------------------
  /// Circuit registry preset ("rd53"), prefixed source ("file:adder.pla",
  /// "gen:weight5", ...) or JSON pipeline spec — see circuit/registry.hpp.
  /// Registry names keep their historical meaning (the fast benchmark load).
  ExperimentBuilder& circuit(const std::string& nameOrSpec);
  /// Explicit pipeline declaration.
  ExperimentBuilder& circuit(const CircuitSpec& spec);
  /// Explicit cover under a custom label (compiled as a Cover-source spec:
  /// two-level, or multi-level when multiLevel() is set).
  ExperimentBuilder& circuit(const std::string& label, const Cover& cover);
  /// Pre-built function matrix under a custom label (bypasses the pipeline).
  ExperimentBuilder& circuit(const std::string& label, FunctionMatrix fm);
  /// Realize the declared circuit as a multi-level (factored NAND) crossbar
  /// instead of the two-level one; overrides the spec's realize knob.
  /// Ignored for pre-built function matrices.
  ExperimentBuilder& multiLevel(bool on = true);
  /// Compile through the memoized synthesis front-end (default) or run the
  /// raw pipeline every time (benchmarking bypass). Inline covers
  /// (circuit(label, cover)) are never memoized — the global cache has no
  /// eviction, and an open-ended stream of distinct covers must not
  /// accumulate immortal entries.
  ExperimentBuilder& cache(bool on);

  // --- mapper -------------------------------------------------------------
  /// Registry name ("hba", "ea", "fast-ea", ...) or JSON option spec.
  ExperimentBuilder& mapper(const std::string& nameOrSpec);
  ExperimentBuilder& mapper(std::shared_ptr<const IMapper> mapper);

  // --- defect scenario ----------------------------------------------------
  /// Registry preset (built at @p rate) or JSON model spec.
  ExperimentBuilder& scenario(const std::string& nameOrSpec, double rate = 0.10);
  ExperimentBuilder& scenario(std::shared_ptr<const DefectModel> model);
  /// The legacy i.i.d. rate-pair path (null model): draw-for-draw identical
  /// to the pre-scenario engine — the bit-identity regression surface.
  ExperimentBuilder& legacyRates(double stuckOpen, double stuckClosed = 0.0);

  // --- knobs --------------------------------------------------------------
  ExperimentBuilder& samples(std::size_t n);
  ExperimentBuilder& seed(std::uint64_t seed);
  ExperimentBuilder& threads(std::size_t threads);
  ExperimentBuilder& spareRows(std::size_t spares);
  ExperimentBuilder& verifyMappings(bool on);
  ExperimentBuilder& timePerSample(bool on);
  ExperimentBuilder& keepMappings(bool on);
  /// Graded acceptance budget (functional yield(ε)) in [0, 1]: a sample
  /// counts as epsilon-accepted iff its realized error is within the
  /// budget. 0 (the default) is the classical pass/fail criterion; the
  /// graded counts then appear in the JSON only when the budget was
  /// declared, keeping legacy output byte-identical.
  ExperimentBuilder& errorBudget(double epsilon);

  // --- robustness ---------------------------------------------------------
  /// Abort the run (with partial, well-labeled results) once this budget is
  /// spent — the deadline clock starts when run() is called. Arms the
  /// declared cancelToken, or a private one when none was declared.
  ExperimentBuilder& deadline(double millis);
  /// Cooperative cancellation: workers poll @p token between samples, so an
  /// external cancel() aborts the experiment with partial results.
  ExperimentBuilder& cancelToken(std::shared_ptr<CancelToken> token);
  /// Run on a caller-owned persistent ExecutorPool (the experiment service
  /// shares one across requests) instead of a transient per-run pool.
  ExperimentBuilder& pool(ExecutorPool* pool);

  /// Run the declared experiment through the parallel Monte Carlo engine.
  /// Throws mcx::InvalidArgument when no circuit or no mapper was declared,
  /// mcx::ParseError for unresolvable names/specs (thrown eagerly by the
  /// declaration calls above).
  ExperimentResult run() const;

private:
  std::string circuitLabel_;
  std::optional<CircuitSpec> spec_;
  std::optional<FunctionMatrix> fm_;
  std::optional<bool> multiLevel_;
  bool cache_ = true;
  std::shared_ptr<const IMapper> mapper_;
  std::string scenarioLabel_;
  std::optional<double> deadlineMillis_;
  bool errorBudgetDeclared_ = false;
  DefectExperimentConfig config_;
};

}  // namespace mcx
