#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace mcx::obs {

// ---------------------------------------------------------------- Counter

std::size_t Counter::shardIndex() noexcept {
  // Round-robin shard assignment at first touch per thread: consecutive
  // pool workers land on distinct cache lines without hashing ids.
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return mine;
}

// -------------------------------------------------------------- Histogram

std::size_t Histogram::bucketIndex(std::uint64_t nanos) noexcept {
  if (nanos < kSubBuckets) return static_cast<std::size_t>(nanos);
  const unsigned exp = 63u - static_cast<unsigned>(std::countl_zero(nanos));
  const std::size_t group = exp - kSubBits + 1;
  const std::size_t sub =
      static_cast<std::size_t>(nanos >> (exp - kSubBits)) - kSubBuckets;
  const std::size_t index = (group << kSubBits) + sub;
  return std::min(index, kBuckets - 1);
}

std::uint64_t Histogram::bucketLo(std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  if (index >= kBuckets - 1) return std::uint64_t{1} << kMaxExp;  // overflow
  const std::size_t group = index >> kSubBits;
  const std::size_t sub = index & (kSubBuckets - 1);
  return static_cast<std::uint64_t>(kSubBuckets + sub) << (group - 1);
}

std::uint64_t Histogram::bucketWidth(std::size_t index) noexcept {
  if (index < kSubBuckets) return 1;
  if (index >= kBuckets - 1) return 0;  // overflow: quantiles use the exact max
  const std::size_t group = index >> kSubBits;
  return std::uint64_t{1} << (group - 1);
}

void Histogram::record(std::uint64_t nanos) noexcept {
  buckets_[bucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(nanos, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_.compare_exchange_weak(seen, nanos, std::memory_order_relaxed)) {
  }
}

void Histogram::recordMillis(double millis) noexcept {
  if (!(millis > 0)) {  // negatives and NaN clamp to the zero bucket
    record(0);
    return;
  }
  record(static_cast<std::uint64_t>(millis * 1e6));
}

void Histogram::recordSeconds(double seconds) noexcept {
  recordMillis(seconds * 1e3);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kBuckets; ++i)
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      if (i == kBuckets - 1) return static_cast<double>(max);
      const double frac = (target - cum) / static_cast<double>(counts[i]);
      const double value = static_cast<double>(bucketLo(i)) +
                           frac * static_cast<double>(bucketWidth(i));
      return std::min(value, static_cast<double>(max));
    }
    cum = next;
  }
  return static_cast<double>(max);
}

// --------------------------------------------------------------- Registry

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  return *it->second;
}

void Registry::writeJson(JsonWriter& json) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  json.beginObject();
  json.key("counters");
  json.beginObject();
  for (const auto& [name, counter] : counters_) json.field(name, counter->value());
  json.endObject();
  json.key("gauges");
  json.beginObject();
  for (const auto& [name, gauge] : gauges_) json.field(name, gauge->value());
  json.endObject();
  json.key("histograms");
  json.beginObject();
  constexpr double kNsPerMs = 1e6;
  for (const auto& [name, hist] : histograms_) {
    const Histogram::Snapshot snap = hist->snapshot();
    json.key(name);
    json.beginObject();
    json.field("count", snap.count);
    json.field("mean_ms", snap.mean() / kNsPerMs);
    json.field("p50_ms", snap.quantile(0.50) / kNsPerMs);
    json.field("p90_ms", snap.quantile(0.90) / kNsPerMs);
    json.field("p99_ms", snap.quantile(0.99) / kNsPerMs);
    json.field("max_ms", static_cast<double>(snap.max) / kNsPerMs);
    json.endObject();
  }
  json.endObject();
  json.endObject();
}

std::string Registry::toJson(bool pretty) const {
  std::ostringstream out;
  JsonWriter json(out, pretty);
  writeJson(json);
  return out.str();
}

// -------------------------------------------------------- profiling gate

namespace detail {
std::atomic<bool> profilingArmedFlag{false};
}  // namespace detail

void setProfiling(bool armed) noexcept {
  detail::profilingArmedFlag.store(armed, std::memory_order_relaxed);
}

bool armProfilingFromEnv() {
  const char* env = std::getenv("MCX_PROFILE");
  if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
    setProfiling(true);
  return profilingArmed();
}

}  // namespace mcx::obs
