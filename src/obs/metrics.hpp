// mcx::obs — process-wide telemetry primitives.
//
// Three metric kinds, all safe for concurrent mutation without external
// locking (TSan-clean by construction: every shared word is a std::atomic):
//
//   - Counter: monotonic uint64, sharded across cache lines so concurrent
//     increments from the executor pool don't bounce one hot line around.
//     Reads sum the shards — O(kShards), cheap at snapshot frequency.
//   - Gauge: a level (queue depth, in-flight requests, samples/sec). Plain
//     atomic int64 with set/add; reads are instantaneous values.
//   - Histogram: log-linear (HDR-style) latency distribution in NANOSECONDS.
//     kSubBits sub-buckets per power of two bound the relative bucketing
//     error at 2^-kSubBits (12.5%); quantiles interpolate inside the bucket
//     and clamp to the exact (CAS-maintained) max. Fixed footprint, no
//     allocation on the record path.
//
// The Registry maps stable names ("serve.queue_wait", "mc.samples") to
// metrics. Lookup takes a mutex — callers resolve once and keep the
// reference (entries are never removed, so references stay valid for the
// process lifetime). Snapshots serialize every metric to JSON in name
// order; histograms report count/mean/p50/p90/p99/max in milliseconds.
//
// profilingArmed() is the hot-path gate: one relaxed load + branch (the
// faultinject idiom). Ultra-hot instrumentation (per-Hopcroft–Karp-run
// counters at ~1µs granularity) hides behind it so the disarmed service
// pays nothing measurable.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/json_writer.hpp"

namespace mcx::obs {

/// Monotonic counter. add() is wait-free: one relaxed fetch_add on a
/// thread-affine, cache-line-aligned shard.
class Counter {
public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[shardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t shardIndex() noexcept;

  std::array<Shard, kShards> shards_{};
};

/// Instantaneous level (may go down). set() publishes, add() adjusts.
class Gauge {
public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-linear latency histogram over uint64 nanoseconds.
///
/// Bucketing: values below 2^kSubBits get unit-width buckets; above, each
/// power-of-two octave splits into 2^kSubBits equal sub-buckets, so any
/// recorded value lands in a bucket whose width is at most 12.5% of its
/// lower bound. Values at or beyond 2^kMaxExp ns (~18 minutes) collapse
/// into one overflow bucket; quantiles falling there report the exact max.
class Histogram {
public:
  static constexpr unsigned kSubBits = 3;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;  // 8
  static constexpr unsigned kMaxExp = 40;                  // 2^40 ns ≈ 18.3 min
  static constexpr std::size_t kGroups = kMaxExp - kSubBits;  // octave groups ≥ 1
  /// Linear group + kGroups octave groups + the overflow bucket.
  static constexpr std::size_t kBuckets = (kGroups + 1) * kSubBuckets + 1;

  void record(std::uint64_t nanos) noexcept;
  void recordMillis(double millis) noexcept;
  void recordSeconds(double seconds) noexcept;

  /// A consistent-enough copy for reporting (individual loads are relaxed;
  /// counts racing in during the copy may straddle, which is fine for
  /// monitoring output).
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;   ///< nanoseconds
    std::uint64_t max = 0;   ///< exact, not bucketed
    /// Quantile in nanoseconds: linear interpolation inside the landing
    /// bucket, clamped to the exact max. q outside [0,1] is clamped.
    double quantile(double q) const;
    double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
  };
  Snapshot snapshot() const;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }

  /// Bucket geometry (exposed for tests).
  static std::size_t bucketIndex(std::uint64_t nanos) noexcept;
  static std::uint64_t bucketLo(std::size_t index) noexcept;
  static std::uint64_t bucketWidth(std::size_t index) noexcept;

private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Named metric registry. Resolution is mutex-guarded; returned references
/// are stable for the process lifetime (entries live in unique_ptrs and are
/// never erased). Typical use: resolve once at construction, mutate lock-free
/// ever after.
class Registry {
public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Full snapshot: {"counters":{...},"gauges":{...},"histograms":{...}},
  /// each section sorted by name. Histogram quantiles are reported in
  /// milliseconds (recorded nanoseconds / 1e6).
  void writeJson(JsonWriter& json) const;
  std::string toJson(bool pretty = false) const;

private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

namespace detail {
extern std::atomic<bool> profilingArmedFlag;
}  // namespace detail

/// Hot-path gate for per-iteration profiling hooks (HK warm/cold counts).
/// One relaxed load + predictable branch when disarmed.
inline bool profilingArmed() noexcept {
  return detail::profilingArmedFlag.load(std::memory_order_relaxed);
}
void setProfiling(bool armed) noexcept;
/// Arms profiling when MCX_PROFILE is set to a non-empty, non-"0" value.
/// Returns the resulting armed state.
bool armProfilingFromEnv();

}  // namespace mcx::obs
