// mcx::obs tracing — named, nested timed sections with optional export as
// Chrome trace_event JSON-lines (load the file at chrome://tracing or
// https://ui.perfetto.dev).
//
// Span is the only instrumentation primitive: an RAII section that, on
// destruction, (a) feeds its duration into an optional Histogram and
// (b) writes one Chrome "complete" event ("ph":"X") to the armed TraceSink.
// When neither is wanted — no histogram attached AND no sink armed — the
// constructor is a single relaxed atomic load and the clock is never read,
// so leaving spans compiled into the MC hot path costs ~nothing.
//
// Arming is process-global and monotonic: armTrace(path) opens the sink and
// flips an atomic pointer that every Span polls; disarmTrace() unhooks the
// pointer first and only then closes the file (spans that already loaded
// the pointer finish their writes under the sink's own lock — see
// disarmTrace() for the teardown contract). MCX_TRACE=<path> arms from the
// environment; both mcx_serve and mcx_bench call armTraceFromEnv() at
// startup, so any workload can be traced without code changes.
//
// Nesting is positional, Chrome-style: events carry begin timestamp +
// duration on a per-thread lane (small sequential tids), and the viewer
// reconstructs the stack from containment. No parent ids are recorded.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace mcx::obs {

/// Serialized writer of Chrome trace_event JSON-lines. Output begins with
/// "[" and then emits one `{...},` event per line; Chrome's trace loader
/// accepts the unterminated array, so a crashed process still leaves a
/// loadable trace.
class TraceSink {
public:
  /// Opens @p path for writing (truncates). Throws std::runtime_error on
  /// failure.
  explicit TraceSink(const std::string& path);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// One "complete" event: name, category, microsecond begin + duration,
  /// small per-thread lane id.
  void writeComplete(const char* name, double tsMicros, double durMicros, int tid);

  void flush();
  const std::string& path() const { return path_; }

private:
  std::mutex mutex_;
  std::ofstream out_;
  std::string path_;
};

namespace detail {
extern std::atomic<TraceSink*> traceSinkPtr;
}  // namespace detail

/// The disarmed-path gate: one relaxed load.
inline bool traceArmed() noexcept {
  return detail::traceSinkPtr.load(std::memory_order_relaxed) != nullptr;
}
inline TraceSink* traceSink() noexcept {
  return detail::traceSinkPtr.load(std::memory_order_acquire);
}

/// Opens @p path and arms tracing process-wide (also arms profiling, so the
/// gated hot-path counters light up in the same run). Throws on open
/// failure. Replaces any previously armed sink.
void armTrace(const std::string& path);
/// Unhooks and closes the armed sink (tests; the daemon just exits).
void disarmTrace();
/// Arms from MCX_TRACE=<path> when set and non-empty. Returns true if a
/// sink is armed after the call. Invalid paths report to stderr and leave
/// tracing off rather than killing the process.
bool armTraceFromEnv();

/// Small sequential id for the calling thread (trace lane).
int currentTraceTid() noexcept;

/// RAII timed section. @p hist (optional) receives the duration in
/// nanoseconds; the armed TraceSink (if any) receives a Chrome complete
/// event. With neither, construction and destruction touch no clock.
class Span {
public:
  explicit Span(const char* name, Histogram* hist = nullptr) noexcept
      : name_(name), hist_(hist) {
    if (hist_ != nullptr || traceArmed()) {
      active_ = true;
      startNanos_ = Stopwatch::processNanos();
    }
  }
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the section early (idempotent; the destructor becomes a no-op).
  /// Returns the duration in nanoseconds (0 when the span was inert).
  std::uint64_t finish() noexcept;

private:
  const char* name_;
  Histogram* hist_;
  std::uint64_t startNanos_ = 0;
  bool active_ = false;
};

}  // namespace mcx::obs
