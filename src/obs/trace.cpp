#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>

namespace mcx::obs {

namespace detail {
std::atomic<TraceSink*> traceSinkPtr{nullptr};
}  // namespace detail

namespace {
/// Owns the armed sink; detail::traceSinkPtr is the hot-path view of it.
std::unique_ptr<TraceSink> g_ownedSink;
std::mutex g_armMutex;
}  // namespace

TraceSink::TraceSink(const std::string& path) : out_(path, std::ios::trunc), path_(path) {
  if (!out_.is_open())
    throw std::runtime_error("obs: cannot open trace file '" + path + "'");
  out_ << "[\n";
}

TraceSink::~TraceSink() {
  const std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
}

void TraceSink::writeComplete(const char* name, double tsMicros, double durMicros,
                              int tid) {
  // Span names are code literals (no quotes/backslashes), so the event is
  // formatted without escaping. One line per event, comma-terminated:
  // chrome://tracing accepts the unterminated JSON array.
  char line[256];
  const int n =
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"%s\",\"cat\":\"mcx\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":1,\"tid\":%d},",
                    name, tsMicros, durMicros, tid);
  if (n <= 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  out_.write(line, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof(line) - 1));
  out_.put('\n');
}

void TraceSink::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
}

void armTrace(const std::string& path) {
  auto sink = std::make_unique<TraceSink>(path);  // throws before any unhook
  const std::lock_guard<std::mutex> lock(g_armMutex);
  detail::traceSinkPtr.store(sink.get(), std::memory_order_release);
  g_ownedSink.swap(sink);  // previous sink (if any) flushes + closes here
  setProfiling(true);
}

void disarmTrace() {
  // Teardown contract: callers quiesce span-producing threads first (the
  // tests join their workers; the daemon never disarms). The unhook happens
  // before the close so freshly constructed spans go inert immediately.
  const std::lock_guard<std::mutex> lock(g_armMutex);
  detail::traceSinkPtr.store(nullptr, std::memory_order_release);
  g_ownedSink.reset();
}

bool armTraceFromEnv() {
  const char* env = std::getenv("MCX_TRACE");
  if (env != nullptr && env[0] != '\0') {
    try {
      armTrace(env);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mcx: MCX_TRACE ignored: %s\n", e.what());
    }
  }
  return traceArmed();
}

int currentTraceTid() noexcept {
  static std::atomic<int> next{1};
  static thread_local const int mine = next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

std::uint64_t Span::finish() noexcept {
  if (!active_) return 0;
  active_ = false;
  const std::uint64_t end = Stopwatch::processNanos();
  const std::uint64_t dur = end - startNanos_;
  if (hist_ != nullptr) hist_->record(dur);
  if (TraceSink* sink = traceSink())
    sink->writeComplete(name_, static_cast<double>(startNanos_) / 1e3,
                        static_cast<double>(dur) / 1e3, currentTraceTid());
  return dur;
}

}  // namespace mcx::obs
