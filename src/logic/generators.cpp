#include "logic/generators.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace mcx {

Cover randomSop(const RandomSopOptions& opts, Rng& rng) {
  MCX_REQUIRE(opts.nin > 0 && opts.nout > 0 && opts.products > 0, "randomSop: empty shape");
  const double litTarget = std::clamp(opts.literalsPerProduct, 1.0, double(opts.nin));
  // There are only 3^nin - 1 distinct non-universal cubes; clamp the request
  // so generation terminates at small arity.
  std::size_t products = opts.products;
  if (opts.nin < 12) {
    std::size_t space = 1;
    for (std::size_t i = 0; i < opts.nin; ++i) space *= 3;
    products = std::min(products, space - 1);
  }
  Cover cover(opts.nin, opts.nout);
  std::size_t guard = 0;
  // Small aritys cannot always supply `products` pairwise-incomparable
  // cubes (antichain limits); after enough rejected draws fall back to
  // merely distinct cubes so generation always terminates.
  const std::size_t relaxAfter = products * 50 + 500;
  while (cover.size() < products) {
    const bool requireIrredundant = opts.irredundant && guard < relaxAfter;
    // At saturated small aritys (e.g. 2 variables with a literal target of
    // 2) fewer distinct cubes are reachable than requested; return a best
    // effort cover rather than spinning forever.
    if (++guard >= products * 400 + 4000) break;
    Cube c(opts.nin, opts.nout);
    // Choose each variable as a literal with probability litTarget/nin,
    // guaranteeing at least one literal. A heavy-literal draw produces a
    // full minterm.
    const double cubeLitTarget =
        rng.bernoulli(opts.heavyLiteralFraction) ? double(opts.nin) : litTarget;
    std::size_t lits = 0;
    for (std::size_t v = 0; v < opts.nin; ++v) {
      if (rng.bernoulli(cubeLitTarget / double(opts.nin))) {
        c.setLit(v, rng.bernoulli(0.5) ? Lit::Pos : Lit::Neg);
        ++lits;
      }
    }
    if (lits == 0) {
      const auto v = static_cast<std::size_t>(rng.uniformInt(0, opts.nin - 1));
      c.setLit(v, rng.bernoulli(0.5) ? Lit::Pos : Lit::Neg);
    }
    // Assign at least one output; heavy-output draws share widely.
    double outTarget = std::clamp(opts.outputsPerProduct, 1.0, double(opts.nout));
    if (rng.bernoulli(opts.heavyOutputFraction))
      outTarget = std::clamp(opts.heavyOutputsPerProduct, 1.0, double(opts.nout));
    for (std::size_t o = 0; o < opts.nout; ++o)
      if (rng.bernoulli(outTarget / double(opts.nout))) c.setOut(o);
    if (c.outputBits().none())
      c.setOut(static_cast<std::size_t>(rng.uniformInt(0, opts.nout - 1)));

    bool rejected = false;
    for (const Cube& d : cover.cubes()) {
      if (requireIrredundant ? (d.contains(c) || c.contains(d)) : d == c) {
        rejected = true;
        break;
      }
    }
    if (rejected) continue;
    cover.add(std::move(c));
  }
  return cover;
}

TruthTable weightFunction(std::size_t n) {
  MCX_REQUIRE(n >= 1 && n <= 20, "weightFunction: 1..20 inputs");
  std::size_t nout = 0;
  while ((std::size_t{1} << nout) < n + 1) ++nout;
  return TruthTable::fromFunction(n, nout, [](std::size_t m, std::size_t o) {
    const auto w = static_cast<std::size_t>(std::popcount(static_cast<unsigned long long>(m)));
    return ((w >> o) & 1u) != 0;
  });
}

TruthTable sqrtFunction(std::size_t bits) {
  MCX_REQUIRE(bits >= 2 && bits <= 20, "sqrtFunction: 2..20 inputs");
  const std::size_t nout = (bits + 1) / 2;
  return TruthTable::fromFunction(bits, nout, [](std::size_t m, std::size_t o) {
    std::size_t r = 0;
    while ((r + 1) * (r + 1) <= m) ++r;
    return ((r >> o) & 1u) != 0;
  });
}

TruthTable parityFunction(std::size_t n) {
  MCX_REQUIRE(n >= 1 && n <= 20, "parityFunction: 1..20 inputs");
  return TruthTable::fromFunction(n, 1, [](std::size_t m, std::size_t) {
    return (std::popcount(static_cast<unsigned long long>(m)) & 1) != 0;
  });
}

TruthTable majorityFunction(std::size_t n) {
  MCX_REQUIRE(n >= 1 && n <= 20, "majorityFunction: 1..20 inputs");
  return TruthTable::fromFunction(n, 1, [n](std::size_t m, std::size_t) {
    return static_cast<std::size_t>(std::popcount(static_cast<unsigned long long>(m))) * 2 > n;
  });
}

TruthTable adderFunction(std::size_t bits) {
  MCX_REQUIRE(bits >= 1 && bits <= 10, "adderFunction: 1..10 bits per operand");
  return TruthTable::fromFunction(2 * bits, bits + 1, [bits](std::size_t m, std::size_t o) {
    const std::size_t a = m & ((std::size_t{1} << bits) - 1);
    const std::size_t b = m >> bits;
    return (((a + b) >> o) & 1u) != 0;
  });
}

TruthTable nnLayerFunction(std::size_t nin, std::size_t nout) {
  MCX_REQUIRE(nin >= 1 && nin <= 16, "nnLayerFunction: 1..16 inputs");
  MCX_REQUIRE(nout >= 1 && nout <= 16, "nnLayerFunction: 1..16 outputs");
  // The weight matrix is part of the function's identity: derive it from a
  // fixed-seed stream keyed on (nin, nout) so gen:nn-8x4 names one function
  // forever (committed bench artifacts depend on it).
  Rng rng(0x6e6eull * 1000003ull + nin * 131ull + nout);
  std::vector<int> weights(nout * nin);
  for (std::size_t o = 0; o < nout; ++o)
    for (std::size_t i = 0; i < nin; ++i)
      weights[o * nin + i] = rng.bernoulli(0.5) ? 1 : -1;
  return TruthTable::fromFunction(nin, nout, [nin, &weights](std::size_t m, std::size_t o) {
    int sum = 0;
    for (std::size_t i = 0; i < nin; ++i) {
      const int x = ((m >> i) & 1u) != 0 ? 1 : -1;  // bipolar input encoding
      sum += weights[o * nin + i] * x;
    }
    return sum > 0;
  });
}

TruthTable randomTruthTable(std::size_t nin, std::size_t nout, double onesDensity, Rng& rng) {
  TruthTable tt(nin, nout);
  for (std::size_t o = 0; o < nout; ++o)
    for (std::size_t m = 0; m < tt.numMinterms(); ++m)
      if (rng.bernoulli(onesDensity)) tt.set(o, m);
  return tt;
}

}  // namespace mcx
