// Tiny sum-of-products expression parser for examples and tests.
//
// Grammar (whitespace-insensitive between tokens):
//   expr    := product ('+' product)*
//   product := literal+                        (implicit AND; '*' optional)
//   literal := ['!' | '~'] var | var ['\'']
//   var     := 'x' digits                      (1-based index)
//
// Example: "x1 + x2 + x3 + x4 + x5 x6 x7 x8"  (Fig. 3 of the paper).
#pragma once

#include <string>

#include "logic/cover.hpp"

namespace mcx {

/// Parse a single-output SOP over variables x1..x@p nin. If @p nin is 0 the
/// arity is inferred from the largest variable index used.
Cover parseSop(const std::string& text, std::size_t nin = 0);

}  // namespace mcx
