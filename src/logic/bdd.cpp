#include "logic/bdd.hpp"

#include <functional>
#include <set>

#include "util/error.hpp"

namespace mcx {

BddManager::BddManager(std::size_t numVars) : numVars_(numVars) {
  MCX_REQUIRE(numVars <= 1000, "BddManager: unreasonable variable count");
  const auto terminalVar = static_cast<std::uint32_t>(numVars_);
  nodes_.push_back({terminalVar, 0, 0});  // terminal 0
  nodes_.push_back({terminalVar, 1, 1});  // terminal 1
}

BddRef BddManager::makeNode(std::uint32_t var, BddRef low, BddRef high) {
  if (low == high) return low;
  const NodeKey key{var, low, high};
  if (const auto it = unique_.find(key); it != unique_.end()) return it->second;
  const auto id = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, low, high});
  unique_.emplace(key, id);
  return id;
}

BddRef BddManager::variable(std::size_t var) {
  MCX_REQUIRE(var < numVars_, "BddManager::variable out of range");
  return makeNode(static_cast<std::uint32_t>(var), zero(), one());
}

BddRef BddManager::notVariable(std::size_t var) {
  MCX_REQUIRE(var < numVars_, "BddManager::notVariable out of range");
  return makeNode(static_cast<std::uint32_t>(var), one(), zero());
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == one()) return g;
  if (f == zero()) return h;
  if (g == h) return g;
  if (g == one() && h == zero()) return f;

  const TripleKey key{f, g, h};
  if (const auto it = iteCache_.find(key); it != iteCache_.end()) return it->second;

  const std::uint32_t top = std::min({topVar(f), topVar(g), topVar(h)});
  const auto cof = [&](BddRef x, bool value) -> BddRef {
    if (topVar(x) != top) return x;
    return value ? nodes_[x].high : nodes_[x].low;
  };
  const BddRef low = ite(cof(f, false), cof(g, false), cof(h, false));
  const BddRef high = ite(cof(f, true), cof(g, true), cof(h, true));
  const BddRef result = makeNode(top, low, high);
  iteCache_.emplace(key, result);
  return result;
}

BddRef BddManager::bddAnd(BddRef a, BddRef b) { return ite(a, b, zero()); }
BddRef BddManager::bddOr(BddRef a, BddRef b) { return ite(a, one(), b); }
BddRef BddManager::bddXor(BddRef a, BddRef b) { return ite(a, bddNot(b), b); }
BddRef BddManager::bddNot(BddRef a) { return ite(a, zero(), one()); }

BddRef BddManager::cofactor(BddRef f, std::size_t var, bool value) {
  MCX_REQUIRE(var < numVars_, "BddManager::cofactor out of range");
  const BddRef lit = value ? variable(var) : notVariable(var);
  // Restrict: compose via ite on the literal — simple and correct for the
  // natural order: walk the BDD replacing var-level decisions.
  if (topVar(f) > var) return f;
  if (topVar(f) == var) return value ? nodes_[f].high : nodes_[f].low;
  const BddRef low = cofactor(nodes_[f].low, var, value);
  const BddRef high = cofactor(nodes_[f].high, var, value);
  (void)lit;
  return makeNode(nodes_[f].var, low, high);
}

bool BddManager::evaluate(BddRef f, const DynBits& input) const {
  MCX_REQUIRE(input.size() == numVars_, "BddManager::evaluate arity mismatch");
  while (f > 1) {
    const Node& n = nodes_[f];
    f = input.test(n.var) ? n.high : n.low;
  }
  return f == one();
}

std::uint64_t BddManager::countMinterms(BddRef f) const {
  // count(f) relative to variable level: minterms over vars >= level(f),
  // then scale by the skipped levels above.
  std::unordered_map<BddRef, std::uint64_t> memo;
  const std::function<std::uint64_t(BddRef)> rec = [&](BddRef x) -> std::uint64_t {
    if (x == zero()) return 0;
    if (x == one()) return 1;
    if (const auto it = memo.find(x); it != memo.end()) return it->second;
    const Node& n = nodes_[x];
    const auto scale = [&](BddRef child) {
      const std::uint32_t childVar = nodes_[child].var;
      return rec(child) << (childVar - n.var - 1);
    };
    const std::uint64_t total = scale(n.low) + scale(n.high);
    memo.emplace(x, total);
    return total;
  };
  return rec(f) << nodes_[f].var;
}

BddRef BddManager::fromCover(const Cover& cover, std::size_t output) {
  MCX_REQUIRE(cover.nin() == numVars_, "BddManager::fromCover arity mismatch");
  MCX_REQUIRE(output < cover.nout(), "BddManager::fromCover output out of range");
  BddRef f = zero();
  for (const Cube& c : cover.cubes()) {
    if (!c.out(output) || c.inputEmpty()) continue;
    BddRef cube = one();
    // AND literals from the bottom variable up for smaller intermediate BDDs.
    for (std::size_t v = numVars_; v-- > 0;) {
      switch (c.lit(v)) {
        case Lit::Pos: cube = bddAnd(cube, variable(v)); break;
        case Lit::Neg: cube = bddAnd(cube, notVariable(v)); break;
        default: break;
      }
    }
    f = bddOr(f, cube);
  }
  return f;
}

BddRef BddManager::fromTruthTable(const DynBits& tt) {
  MCX_REQUIRE(tt.size() == (std::size_t{1} << numVars_),
              "BddManager::fromTruthTable width mismatch");
  // The node order puts x1 at the top, which corresponds to minterm index
  // bit 0 — split the table into even (x_var = 0) and odd positions.
  const std::function<BddRef(std::size_t, const DynBits&)> rec =
      [&](std::size_t var, const DynBits& table) -> BddRef {
    if (table.size() == 1) return table.test(0) ? one() : zero();
    DynBits low(table.size() / 2), high(table.size() / 2);
    for (std::size_t i = 0; i < table.size() / 2; ++i) {
      if (table.test(2 * i)) low.set(i);
      if (table.test(2 * i + 1)) high.set(i);
    }
    const BddRef l = rec(var + 1, low);
    const BddRef h = rec(var + 1, high);
    return makeNode(static_cast<std::uint32_t>(var), l, h);
  };
  return rec(0, tt);
}

DynBits BddManager::toTruthTable(BddRef f) const {
  DynBits tt(std::size_t{1} << numVars_);
  DynBits input(numVars_);
  for (std::size_t m = 0; m < tt.size(); ++m) {
    for (std::size_t v = 0; v < numVars_; ++v) input.set(v, ((m >> v) & 1u) != 0);
    if (evaluate(f, input)) tt.set(m);
  }
  return tt;
}

std::size_t BddManager::size(BddRef f) const {
  std::set<BddRef> seen;
  const std::function<void(BddRef)> rec = [&](BddRef x) {
    if (x <= 1 || !seen.insert(x).second) return;
    rec(nodes_[x].low);
    rec(nodes_[x].high);
  };
  rec(f);
  return seen.size() + 2;  // plus terminals
}

}  // namespace mcx
