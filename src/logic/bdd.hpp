// Reduced Ordered Binary Decision Diagrams.
//
// A compact canonical function representation used as an independent
// verification oracle: covers, NAND networks and factor trees are all
// convertible to BDDs, and two functions are equal iff their BDD node ids
// are equal. Complement edges are not used (plain ROBDD with a unique
// table); variable order is the natural x1 < x2 < ... order, which is
// adequate for the benchmark-scale functions in this library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "logic/cover.hpp"
#include "logic/truth_table.hpp"

namespace mcx {

using BddRef = std::uint32_t;

class BddManager {
public:
  explicit BddManager(std::size_t numVars);

  std::size_t numVars() const { return numVars_; }

  BddRef zero() const { return 0; }
  BddRef one() const { return 1; }
  /// The function x_var.
  BddRef variable(std::size_t var);
  /// The function !x_var.
  BddRef notVariable(std::size_t var);

  BddRef bddAnd(BddRef a, BddRef b);
  BddRef bddOr(BddRef a, BddRef b);
  BddRef bddXor(BddRef a, BddRef b);
  BddRef bddNot(BddRef a);
  /// if-then-else(f, g, h)
  BddRef ite(BddRef f, BddRef g, BddRef h);

  /// Shannon cofactor with respect to x_var = value.
  BddRef cofactor(BddRef f, std::size_t var, bool value);

  /// Evaluate on one input assignment.
  bool evaluate(BddRef f, const DynBits& input) const;

  /// Number of ON minterms over all numVars() variables.
  std::uint64_t countMinterms(BddRef f) const;

  /// Build the BDD of output @p o of a cover.
  BddRef fromCover(const Cover& cover, std::size_t output);
  /// Build from a full-width truth table (2^numVars bits).
  BddRef fromTruthTable(const DynBits& tt);
  /// Export to a full-width truth table.
  DynBits toTruthTable(BddRef f) const;

  /// Live node count (diagnostics).
  std::size_t nodeCount() const { return nodes_.size(); }
  /// Nodes reachable from @p f.
  std::size_t size(BddRef f) const;

private:
  struct Node {
    std::uint32_t var;  // numVars_ for terminals
    BddRef low, high;
  };
  struct NodeKey {
    std::uint32_t var;
    BddRef low, high;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::size_t h = k.var;
      h = h * 0x9e3779b97f4a7c15ull + k.low;
      h = h * 0x9e3779b97f4a7c15ull + k.high;
      return h;
    }
  };
  struct TripleKey {
    BddRef f, g, h;
    bool operator==(const TripleKey&) const = default;
  };
  struct TripleKeyHash {
    std::size_t operator()(const TripleKey& k) const {
      std::size_t x = k.f;
      x = x * 0x100000001b3ull + k.g;
      x = x * 0x100000001b3ull + k.h;
      return x;
    }
  };

  BddRef makeNode(std::uint32_t var, BddRef low, BddRef high);
  std::uint32_t topVar(BddRef f) const { return nodes_[f].var; }

  std::size_t numVars_;
  std::vector<Node> nodes_;  // 0 = terminal 0, 1 = terminal 1
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_;
  std::unordered_map<TripleKey, BddRef, TripleKeyHash> iteCache_;
};

}  // namespace mcx
