// Espresso-style two-level minimization.
//
// Implements the classic cube-algebra tool chest over positional-notation
// covers — cofactor, tautology (unate reduction + binate splitting),
// recursive complement, containment — and the EXPAND / IRREDUNDANT / REDUCE
// loop for multi-output covers (output parts treated as in espresso-mv:
// a cube may be raised into additional outputs when it does not intersect
// their OFF sets, which creates shared products).
//
// This replaces the espresso/ABC + MATLAB pipeline of the paper with a
// self-contained implementation; it is heuristic (like espresso) and
// guarantees functional equivalence, not minimality.
#pragma once

#include <cstddef>
#include <vector>

#include "logic/cover.hpp"

namespace mcx {

// --- Input-part cube algebra (output parts of the cubes are ignored) ------

/// Cubes of @p cover admitting x_var = phase, with that variable raised to
/// don't-care.
std::vector<Cube> cofactor(const std::vector<Cube>& cubes, std::size_t var, bool phase);

/// Shannon cofactor of @p cubes with respect to cube @p c (cubes not
/// intersecting c are dropped; literals of c are raised in the rest).
std::vector<Cube> cofactorCube(const std::vector<Cube>& cubes, const Cube& c);

/// True iff the union of the cubes' input parts is the whole Boolean space.
bool tautology(const std::vector<Cube>& cubes, std::size_t nin);

/// True iff cube @p c's input part is covered by the union of @p cubes.
bool cubeCoveredBy(const Cube& c, const std::vector<Cube>& cubes, std::size_t nin);

/// Complement of the union of the cubes' input parts, as a cube list.
std::vector<Cube> complementCubes(std::vector<Cube> cubes, std::size_t nin, std::size_t nout = 0);

/// Smallest single cube containing all given cubes (input parts ORed).
/// Requires a non-empty list.
Cube supercube(const std::vector<Cube>& cubes);

// --- Multi-output minimization --------------------------------------------

struct EspressoOptions {
  /// Maximum EXPAND-IRREDUNDANT-REDUCE passes.
  std::size_t maxPasses = 8;
  /// Attempt to raise cubes into additional outputs during EXPAND
  /// (espresso-mv style output sharing).
  bool expandOutputs = true;
  /// Run the REDUCE step (disable for a faster, expand-only minimization).
  bool reduce = true;
};

/// Minimize a multi-output cover. @p dc is the don't-care cover (may be an
/// empty cover of matching arity). The result asserts exactly the same ON
/// minterms as @p on outside the DC set.
Cover espressoMinimize(const Cover& on, const Cover& dc, const EspressoOptions& opts = {});
Cover espressoMinimize(const Cover& on, const EspressoOptions& opts = {});

/// Complement of a multi-output cover: output o of the result is the
/// complement of output o of (@p on ∪ @p dc choosing DC as OFF)… precisely,
/// the complement of the ON set with the DC set still don't-care. The result
/// is lightly minimized (merged + single-cube containment).
Cover complementCover(const Cover& on, const Cover& dc);
Cover complementCover(const Cover& on);

}  // namespace mcx
