// Berkeley PLA format reader / writer (espresso-compatible subset).
//
// Supported directives: .i .o .p .ilb .ob .type {f, fd, fr, fdr} .e/.end.
// Input characters: 0 1 - (and 2/~ as aliases of -). Output characters:
// 1 (ON), 0 (unused for fd; OFF for fr), - / 2 (DC), ~ (unused).
//
// Malformed input is a hard ParseError carrying the line number: bad or
// missing .i/.o counts, cube width mismatches, bad cube characters, unknown
// directives or .type values, and a missing terminating .e/.end — a file
// that parses at all parses exactly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "logic/cover.hpp"

namespace mcx {

struct PlaFile {
  Cover on;                             ///< ON-set cover
  Cover dc;                             ///< don't-care cover (same arity)
  Cover off;                            ///< OFF-set cover (fr/fdr types)
  std::vector<std::string> inputNames;  ///< empty if the file had no .ilb
  std::vector<std::string> outputNames; ///< empty if the file had no .ob
  std::string type = "fd";
};

/// Parse PLA text. Throws ParseError on malformed input.
PlaFile parsePla(std::istream& in);
PlaFile parsePlaString(const std::string& text);
PlaFile readPlaFile(const std::string& path);

/// Serialize as type-fd PLA (ON cubes, then DC cubes rendered with '-'
/// outputs if present).
std::string writePla(const PlaFile& pla);
std::string writePla(const Cover& on);

}  // namespace mcx
