#include "logic/quine_mccluskey.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"

namespace mcx {

namespace {

/// Implicant as (careMask, values): variable v is a literal iff careMask bit
/// v is set; values holds the literal polarities on care positions.
struct Implicant {
  std::size_t care = 0;
  std::size_t values = 0;

  bool operator<(const Implicant& o) const {
    return care != o.care ? care < o.care : values < o.values;
  }
  bool operator==(const Implicant& o) const = default;
};

Cube toCube(const Implicant& imp, std::size_t nin) {
  Cube c(nin, 0);
  for (std::size_t v = 0; v < nin; ++v) {
    if ((imp.care >> v) & 1u)
      c.setLit(v, ((imp.values >> v) & 1u) ? Lit::Pos : Lit::Neg);
  }
  return c;
}

/// Branch and bound over the covering table: choose a minimum set of primes
/// covering all required minterms.
struct CoverSolver {
  const std::vector<std::vector<std::size_t>>& primeOfMinterm;  // minterm -> prime indices
  std::vector<char> covered;
  std::vector<std::size_t> chosen, best;
  std::size_t bestSize;

  CoverSolver(const std::vector<std::vector<std::size_t>>& pom, std::size_t upperBound)
      : primeOfMinterm(pom), covered(pom.size(), 0), bestSize(upperBound) {}

  std::size_t firstUncovered() const {
    for (std::size_t m = 0; m < covered.size(); ++m)
      if (!covered[m]) return m;
    return covered.size();
  }

  void solve(const std::vector<std::vector<std::size_t>>& mintermsOfPrime) {
    if (chosen.size() >= bestSize) return;  // bound
    const std::size_t m = firstUncovered();
    if (m == covered.size()) {
      best = chosen;
      bestSize = chosen.size();
      return;
    }
    for (const std::size_t p : primeOfMinterm[m]) {
      std::vector<std::size_t> newlyCovered;
      for (const std::size_t mm : mintermsOfPrime[p]) {
        if (mm < covered.size() && !covered[mm]) {
          covered[mm] = 1;
          newlyCovered.push_back(mm);
        }
      }
      chosen.push_back(p);
      solve(mintermsOfPrime);
      chosen.pop_back();
      for (const std::size_t mm : newlyCovered) covered[mm] = 0;
    }
  }
};

}  // namespace

std::vector<Cube> primeImplicants(const DynBits& on, const DynBits& dc, std::size_t nin) {
  MCX_REQUIRE(nin <= 16, "primeImplicants: limited to 16 inputs");
  MCX_REQUIRE(on.size() == (std::size_t{1} << nin) && dc.size() == on.size(),
              "primeImplicants: truth table width mismatch");
  const std::size_t full = (std::size_t{1} << nin) - 1;

  // Level 0: all ON or DC minterms as implicants with full care.
  std::set<Implicant> current;
  DynBits care = on;
  care |= dc;
  care.forEachSet([&](std::size_t m) { current.insert({full, m}); });

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::set<Implicant> next;
    std::set<Implicant> merged;
    for (const Implicant& a : current) {
      bool anyMerge = false;
      // Try dropping each care variable by pairing with the complement.
      for (std::size_t v = 0; v < nin; ++v) {
        const std::size_t bit = std::size_t{1} << v;
        if (!(a.care & bit)) continue;
        Implicant partner = a;
        partner.values ^= bit;
        if (current.count(partner)) {
          anyMerge = true;
          next.insert({a.care & ~bit, a.values & ~bit});
        }
      }
      if (anyMerge) merged.insert(a);
    }
    for (const Implicant& a : current)
      if (!merged.count(a)) primes.push_back(toCube(a, nin));
    current = std::move(next);
  }
  return primes;
}

QmResult quineMcCluskey(const TruthTable& on, const TruthTable& dc, std::size_t output) {
  MCX_REQUIRE(output < on.nout() && on.nin() == dc.nin(), "quineMcCluskey: shape mismatch");
  MCX_REQUIRE(on.nin() <= 12, "quineMcCluskey: limited to 12 inputs");
  const std::size_t nin = on.nin();

  QmResult result;
  const std::vector<Cube> primes = primeImplicants(on.bits(output), dc.bits(output), nin);
  result.primeCount = primes.size();
  if (on.bits(output).none()) return result;  // constant 0: empty cover

  // Covering table over required (ON, not DC) minterms.
  std::vector<std::size_t> required;
  on.bits(output).forEachSet([&](std::size_t m) {
    if (!dc.get(output, m)) required.push_back(m);
  });
  std::map<std::size_t, std::size_t> indexOfMinterm;
  for (std::size_t i = 0; i < required.size(); ++i) indexOfMinterm[required[i]] = i;

  std::vector<std::vector<std::size_t>> mintermsOfPrime(primes.size());
  std::vector<std::vector<std::size_t>> primesOfMinterm(required.size());
  DynBits in(nin);
  for (std::size_t p = 0; p < primes.size(); ++p) {
    for (std::size_t i = 0; i < required.size(); ++i) {
      const std::size_t m = required[i];
      for (std::size_t v = 0; v < nin; ++v) in.set(v, ((m >> v) & 1u) != 0);
      if (primes[p].coversMinterm(in)) {
        mintermsOfPrime[p].push_back(i);
        primesOfMinterm[i].push_back(p);
      }
    }
  }

  // Essential primes first.
  std::vector<char> chosenPrime(primes.size(), 0), covered(required.size(), 0);
  for (std::size_t i = 0; i < required.size(); ++i) {
    MCX_REQUIRE(!primesOfMinterm[i].empty(), "quineMcCluskey: uncoverable minterm");
    if (primesOfMinterm[i].size() == 1) chosenPrime[primesOfMinterm[i][0]] = 1;
  }
  for (std::size_t p = 0; p < primes.size(); ++p)
    if (chosenPrime[p])
      for (const std::size_t i : mintermsOfPrime[p]) covered[i] = 1;

  // Cyclic core via branch and bound.
  std::vector<std::size_t> coreMinterms;
  for (std::size_t i = 0; i < required.size(); ++i)
    if (!covered[i]) coreMinterms.push_back(i);

  if (!coreMinterms.empty()) {
    // Re-index the core.
    std::map<std::size_t, std::size_t> coreIndex;
    for (std::size_t i = 0; i < coreMinterms.size(); ++i) coreIndex[coreMinterms[i]] = i;
    std::vector<std::vector<std::size_t>> corePrimesOfMinterm(coreMinterms.size());
    std::vector<std::vector<std::size_t>> coreMintermsOfPrime(primes.size());
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (chosenPrime[p]) continue;
      for (const std::size_t i : mintermsOfPrime[p]) {
        const auto it = coreIndex.find(i);
        if (it != coreIndex.end()) {
          corePrimesOfMinterm[it->second].push_back(p);
          coreMintermsOfPrime[p].push_back(it->second);
        }
      }
    }
    CoverSolver solver(corePrimesOfMinterm, coreMinterms.size() + 1);
    solver.solve(coreMintermsOfPrime);
    for (const std::size_t p : solver.best) chosenPrime[p] = 1;
  }

  for (std::size_t p = 0; p < primes.size(); ++p)
    if (chosenPrime[p]) result.cover.push_back(primes[p]);
  return result;
}

QmResult quineMcCluskey(const TruthTable& on, std::size_t output) {
  const TruthTable dc(on.nin(), on.nout());
  return quineMcCluskey(on, dc, output);
}

}  // namespace mcx
