#include "logic/cube.hpp"

#include <bit>

#include "util/error.hpp"

namespace mcx {

namespace {
// Mask selecting the "neg" bits (even positions) of each 64-bit word.
constexpr DynBits::Word kNegMask = 0x5555555555555555ull;
}  // namespace

Cube::Cube(std::size_t nin, std::size_t nout) : nin_(nin), in_(2 * nin, true), out_(nout) {}

Lit Cube::lit(std::size_t var) const {
  MCX_REQUIRE(var < nin_, "Cube::lit out of range");
  const unsigned neg = in_.test(2 * var) ? 1u : 0u;
  const unsigned pos = in_.test(2 * var + 1) ? 1u : 0u;
  return static_cast<Lit>(neg | (pos << 1));
}

void Cube::setLit(std::size_t var, Lit l) {
  MCX_REQUIRE(var < nin_, "Cube::setLit out of range");
  const auto v = static_cast<unsigned>(l);
  in_.set(2 * var, (v & 1u) != 0);
  in_.set(2 * var + 1, (v & 2u) != 0);
}

bool Cube::inputEmpty() const {
  // A variable pair is empty iff both its bits are clear. Tail bits beyond
  // 2*nin are always zero, so each word is checked only over its valid pairs.
  const auto& words = in_.words();
  const std::size_t nPairs = nin_;
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    const DynBits::Word w = words[wi];
    DynBits::Word pairPresent = (w | (w >> 1)) & kNegMask;  // 1 in even slot if pair nonempty
    // Expected pairs in this word:
    const std::size_t firstPair = wi * 32;
    if (firstPair >= nPairs) break;
    const std::size_t pairsHere = std::min<std::size_t>(32, nPairs - firstPair);
    const DynBits::Word expect =
        pairsHere == 32 ? kNegMask : ((DynBits::Word{1} << (2 * pairsHere)) - 1) & kNegMask;
    if ((pairPresent & expect) != expect) return true;
  }
  return false;
}

std::size_t Cube::literalCount() const {
  // A variable contributes a literal iff its pair is 01 or 10 (exactly one
  // bit set), i.e. bits differ.
  std::size_t count = 0;
  const auto& words = in_.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    const DynBits::Word w = words[wi];
    const DynBits::Word differs = (w ^ (w >> 1)) & kNegMask;
    count += static_cast<std::size_t>(std::popcount(differs));
  }
  return count;
}

bool Cube::inputIntersects(const Cube& o) const { return inputDistance(o) == 0; }

std::size_t Cube::inputDistance(const Cube& o) const {
  MCX_REQUIRE(nin_ == o.nin_, "Cube::inputDistance arity mismatch");
  std::size_t dist = 0;
  const auto& a = in_.words();
  const auto& b = o.in_.words();
  const std::size_t nPairs = nin_;
  for (std::size_t wi = 0; wi < a.size(); ++wi) {
    const DynBits::Word w = a[wi] & b[wi];
    DynBits::Word pairPresent = (w | (w >> 1)) & kNegMask;
    const std::size_t firstPair = wi * 32;
    if (firstPair >= nPairs) break;
    const std::size_t pairsHere = std::min<std::size_t>(32, nPairs - firstPair);
    const DynBits::Word expect =
        pairsHere == 32 ? kNegMask : ((DynBits::Word{1} << (2 * pairsHere)) - 1) & kNegMask;
    dist += static_cast<std::size_t>(std::popcount(expect & ~pairPresent));
  }
  return dist;
}

Cube Cube::intersect(const Cube& o) const {
  MCX_REQUIRE(nin_ == o.nin_ && nout() == o.nout(), "Cube::intersect shape mismatch");
  Cube r(*this);
  r.in_ &= o.in_;
  r.out_ &= o.out_;
  return r;
}

Cube Cube::supercubeWith(const Cube& o) const {
  MCX_REQUIRE(nin_ == o.nin_ && nout() == o.nout(), "Cube::supercubeWith shape mismatch");
  Cube r(*this);
  r.in_ |= o.in_;
  r.out_ |= o.out_;
  return r;
}

bool Cube::coversMinterm(const DynBits& assignment) const {
  MCX_REQUIRE(assignment.size() == nin_, "Cube::coversMinterm arity mismatch");
  for (std::size_t i = 0; i < nin_; ++i) {
    const bool value = assignment.test(i);
    if (!in_.test(2 * i + (value ? 1 : 0))) return false;
  }
  return true;
}

std::string Cube::inputString() const {
  std::string s(nin_, '-');
  for (std::size_t i = 0; i < nin_; ++i) {
    switch (lit(i)) {
      case Lit::Empty: s[i] = '?'; break;
      case Lit::Neg: s[i] = '0'; break;
      case Lit::Pos: s[i] = '1'; break;
      case Lit::DontCare: s[i] = '-'; break;
    }
  }
  return s;
}

std::string Cube::toPlaString() const {
  std::string s = inputString();
  s.push_back(' ');
  for (std::size_t o = 0; o < nout(); ++o) s.push_back(out(o) ? '1' : '0');
  return s;
}

}  // namespace mcx
