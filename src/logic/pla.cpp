#include "logic/pla.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace mcx {

namespace {

std::vector<std::string> splitWs(const std::string& s) {
  std::istringstream is(s);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

}  // namespace

PlaFile parsePla(std::istream& in) {
  std::size_t nin = 0, nout = 0;
  bool haveI = false, haveO = false;
  PlaFile pla;
  std::vector<std::pair<std::string, std::string>> bodyLines;  // (input, output)

  std::string line;
  while (std::getline(in, line)) {
    // Strip comments and whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    const auto toks = splitWs(line);
    if (toks.empty()) continue;
    const std::string& head = toks[0];
    if (head[0] == '.') {
      if (head == ".i") {
        MCX_REQUIRE(toks.size() == 2, ".i needs one argument");
        nin = std::stoul(toks[1]);
        haveI = true;
      } else if (head == ".o") {
        MCX_REQUIRE(toks.size() == 2, ".o needs one argument");
        nout = std::stoul(toks[1]);
        haveO = true;
      } else if (head == ".p") {
        // informational; ignored
      } else if (head == ".ilb") {
        pla.inputNames.assign(toks.begin() + 1, toks.end());
      } else if (head == ".ob") {
        pla.outputNames.assign(toks.begin() + 1, toks.end());
      } else if (head == ".type") {
        MCX_REQUIRE(toks.size() == 2, ".type needs one argument");
        pla.type = toks[1];
      } else if (head == ".e" || head == ".end") {
        break;
      } else {
        throw ParseError("unsupported PLA directive: " + head);
      }
      continue;
    }
    // Body line: input part and output part, possibly space separated.
    std::string inPart, outPart;
    if (toks.size() >= 2) {
      inPart = toks[0];
      for (std::size_t i = 1; i < toks.size(); ++i) outPart += toks[i];
    } else {
      if (!haveI || !haveO) throw ParseError("PLA cube before .i/.o");
      const std::string& all = toks[0];
      if (all.size() != nin + nout) throw ParseError("PLA cube width mismatch: " + all);
      inPart = all.substr(0, nin);
      outPart = all.substr(nin);
    }
    bodyLines.emplace_back(inPart, outPart);
  }

  if (!haveI || !haveO) throw ParseError("PLA missing .i or .o");
  pla.on = Cover(nin, nout);
  pla.dc = Cover(nin, nout);
  pla.off = Cover(nin, nout);

  const bool offMeaningful = pla.type == "fr" || pla.type == "fdr";
  const bool dcMeaningful = pla.type == "fd" || pla.type == "fdr" || pla.type == "f";

  for (const auto& [inPart, outPart] : bodyLines) {
    if (inPart.size() != nin) throw ParseError("PLA input part width mismatch: " + inPart);
    if (outPart.size() != nout) throw ParseError("PLA output part width mismatch: " + outPart);
    Cube base(nin, nout);
    for (std::size_t i = 0; i < nin; ++i) {
      switch (inPart[i]) {
        case '0': base.setLit(i, Lit::Neg); break;
        case '1': base.setLit(i, Lit::Pos); break;
        case '-': case '2': case '~': base.setLit(i, Lit::DontCare); break;
        default: throw ParseError(std::string("bad PLA input char '") + inPart[i] + "'");
      }
    }
    Cube onCube = base, dcCube = base, offCube = base;
    bool anyOn = false, anyDc = false, anyOff = false;
    for (std::size_t o = 0; o < nout; ++o) {
      switch (outPart[o]) {
        case '1': case '4':
          onCube.setOut(o);
          anyOn = true;
          break;
        case '0':
          if (offMeaningful) {
            offCube.setOut(o);
            anyOff = true;
          }
          break;
        case '-': case '2':
          if (dcMeaningful) {
            dcCube.setOut(o);
            anyDc = true;
          }
          break;
        case '~':
          break;
        default:
          throw ParseError(std::string("bad PLA output char '") + outPart[o] + "'");
      }
    }
    if (anyOn) pla.on.add(std::move(onCube));
    if (anyDc) pla.dc.add(std::move(dcCube));
    if (anyOff) pla.off.add(std::move(offCube));
  }
  return pla;
}

PlaFile parsePlaString(const std::string& text) {
  std::istringstream is(text);
  return parsePla(is);
}

PlaFile readPlaFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ParseError("cannot open PLA file: " + path);
  return parsePla(f);
}

std::string writePla(const PlaFile& pla) {
  std::ostringstream os;
  os << ".i " << pla.on.nin() << "\n.o " << pla.on.nout() << "\n";
  if (!pla.inputNames.empty()) {
    os << ".ilb";
    for (const auto& n : pla.inputNames) os << ' ' << n;
    os << '\n';
  }
  if (!pla.outputNames.empty()) {
    os << ".ob";
    for (const auto& n : pla.outputNames) os << ' ' << n;
    os << '\n';
  }
  os << ".type fd\n";
  os << ".p " << (pla.on.size() + pla.dc.size()) << "\n";
  for (const Cube& c : pla.on.cubes()) os << c.toPlaString() << "\n";
  for (const Cube& c : pla.dc.cubes()) {
    os << c.inputString() << ' ';
    for (std::size_t o = 0; o < pla.dc.nout(); ++o) os << (c.out(o) ? '-' : '0');
    os << "\n";
  }
  os << ".e\n";
  return os.str();
}

std::string writePla(const Cover& on) {
  PlaFile pla;
  pla.on = on;
  pla.dc = Cover(on.nin(), on.nout());
  pla.off = Cover(on.nin(), on.nout());
  return writePla(pla);
}

}  // namespace mcx
