#include "logic/pla.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace mcx {

namespace {

std::vector<std::string> splitWs(const std::string& s) {
  std::istringstream is(s);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

[[noreturn]] void plaError(std::size_t line, const std::string& message) {
  throw ParseError("PLA line " + std::to_string(line) + ": " + message);
}

/// Strict directive argument: all digits, >= 1. A silently truncated ".i 5x"
/// or an accepted ".i 0" would misparse every cube that follows.
std::size_t parseDirectiveCount(std::size_t line, const std::string& directive,
                                const std::string& text) {
  std::size_t value = 0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || end != text.data() + text.size())
    plaError(line, directive + ": bad count \"" + text + "\"");
  if (value == 0) plaError(line, directive + " must be at least 1");
  return value;
}

struct BodyLine {
  std::string in;
  std::string out;
  std::size_t line = 0;
};

}  // namespace

PlaFile parsePla(std::istream& in) {
  std::size_t nin = 0, nout = 0;
  bool haveI = false, haveO = false, haveEnd = false;
  PlaFile pla;
  std::vector<BodyLine> bodyLines;

  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    // Strip comments and whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    const auto toks = splitWs(line);
    if (toks.empty()) continue;
    const std::string& head = toks[0];
    if (head[0] == '.') {
      if (head == ".i") {
        if (haveI) plaError(lineNo, "duplicate .i");
        if (toks.size() != 2) plaError(lineNo, ".i needs exactly one argument");
        nin = parseDirectiveCount(lineNo, ".i", toks[1]);
        haveI = true;
      } else if (head == ".o") {
        if (haveO) plaError(lineNo, "duplicate .o");
        if (toks.size() != 2) plaError(lineNo, ".o needs exactly one argument");
        nout = parseDirectiveCount(lineNo, ".o", toks[1]);
        haveO = true;
      } else if (head == ".p") {
        // informational; ignored
      } else if (head == ".ilb") {
        pla.inputNames.assign(toks.begin() + 1, toks.end());
      } else if (head == ".ob") {
        pla.outputNames.assign(toks.begin() + 1, toks.end());
      } else if (head == ".type") {
        if (toks.size() != 2) plaError(lineNo, ".type needs exactly one argument");
        if (toks[1] != "f" && toks[1] != "fd" && toks[1] != "fr" && toks[1] != "fdr")
          plaError(lineNo, "unsupported .type \"" + toks[1] + "\" (f, fd, fr, fdr)");
        pla.type = toks[1];
      } else if (head == ".e" || head == ".end") {
        haveEnd = true;
        break;
      } else {
        plaError(lineNo, "unsupported directive: " + head);
      }
      continue;
    }
    // Body line: input part and output part, possibly space separated.
    if (!haveI || !haveO) plaError(lineNo, "cube before .i/.o");
    std::string inPart, outPart;
    if (toks.size() >= 2) {
      inPart = toks[0];
      for (std::size_t i = 1; i < toks.size(); ++i) outPart += toks[i];
    } else {
      const std::string& all = toks[0];
      if (all.size() != nin + nout)
        plaError(lineNo, "cube width " + std::to_string(all.size()) + ", expected " +
                             std::to_string(nin + nout) + " (.i + .o): \"" + all + "\"");
      inPart = all.substr(0, nin);
      outPart = all.substr(nin);
    }
    // Validate widths here, with the line number in hand; character
    // validation lives in the classification switches below (their default
    // branches, which also carry the recorded line), because ON/DC/OFF
    // classification must wait for the (possibly later) .type anyway.
    if (inPart.size() != nin)
      plaError(lineNo, "input part width " + std::to_string(inPart.size()) + ", expected " +
                           std::to_string(nin) + ": \"" + inPart + "\"");
    if (outPart.size() != nout)
      plaError(lineNo, "output part width " + std::to_string(outPart.size()) +
                           ", expected " + std::to_string(nout) + ": \"" + outPart + "\"");
    bodyLines.push_back({std::move(inPart), std::move(outPart), lineNo});
  }

  // End-of-input checks: no invented line numbers — the missing directive
  // is a property of the whole document, not of a line.
  if (!haveI || !haveO) throw ParseError("PLA: missing .i or .o directive");
  if (!haveEnd) throw ParseError("PLA: missing .e/.end at end of input");
  pla.on = Cover(nin, nout);
  pla.dc = Cover(nin, nout);
  pla.off = Cover(nin, nout);

  const bool offMeaningful = pla.type == "fr" || pla.type == "fdr";
  const bool dcMeaningful = pla.type == "fd" || pla.type == "fdr" || pla.type == "f";

  for (const BodyLine& body : bodyLines) {
    Cube base(nin, nout);
    for (std::size_t i = 0; i < nin; ++i) {
      switch (body.in[i]) {
        case '0': base.setLit(i, Lit::Neg); break;
        case '1': base.setLit(i, Lit::Pos); break;
        case '-': case '2': case '~': base.setLit(i, Lit::DontCare); break;
        default: plaError(body.line, std::string("bad input character '") + body.in[i] + "'");
      }
    }
    Cube onCube = base, dcCube = base, offCube = base;
    bool anyOn = false, anyDc = false, anyOff = false;
    for (std::size_t o = 0; o < nout; ++o) {
      switch (body.out[o]) {
        case '1': case '4':
          onCube.setOut(o);
          anyOn = true;
          break;
        case '0':
          if (offMeaningful) {
            offCube.setOut(o);
            anyOff = true;
          }
          break;
        case '-': case '2':
          if (dcMeaningful) {
            dcCube.setOut(o);
            anyDc = true;
          }
          break;
        case '~':
          break;
        default:
          plaError(body.line, std::string("bad output character '") + body.out[o] + "'");
      }
    }
    if (anyOn) pla.on.add(std::move(onCube));
    if (anyDc) pla.dc.add(std::move(dcCube));
    if (anyOff) pla.off.add(std::move(offCube));
  }
  return pla;
}

PlaFile parsePlaString(const std::string& text) {
  std::istringstream is(text);
  return parsePla(is);
}

PlaFile readPlaFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ParseError("cannot open PLA file: " + path);
  return parsePla(f);
}

std::string writePla(const PlaFile& pla) {
  std::ostringstream os;
  os << ".i " << pla.on.nin() << "\n.o " << pla.on.nout() << "\n";
  if (!pla.inputNames.empty()) {
    os << ".ilb";
    for (const auto& n : pla.inputNames) os << ' ' << n;
    os << '\n';
  }
  if (!pla.outputNames.empty()) {
    os << ".ob";
    for (const auto& n : pla.outputNames) os << ' ' << n;
    os << '\n';
  }
  os << ".type fd\n";
  os << ".p " << (pla.on.size() + pla.dc.size()) << "\n";
  for (const Cube& c : pla.on.cubes()) os << c.toPlaString() << "\n";
  for (const Cube& c : pla.dc.cubes()) {
    os << c.inputString() << ' ';
    for (std::size_t o = 0; o < pla.dc.nout(); ++o) os << (c.out(o) ? '-' : '0');
    os << "\n";
  }
  os << ".e\n";
  return os.str();
}

std::string writePla(const Cover& on) {
  PlaFile pla;
  pla.on = on;
  pla.dc = Cover(on.nin(), on.nout());
  pla.off = Cover(on.nin(), on.nout());
  return writePla(pla);
}

}  // namespace mcx
