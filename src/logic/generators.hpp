// Function generators: random SOPs (the paper's Fig. 6 workload) and the
// mathematically defined MCNC circuits (rd53/rd73/rd84 weight functions,
// sqrt8) plus classic stress functions (parity, majority, adders).
#pragma once

#include <cstddef>

#include "logic/cover.hpp"
#include "logic/truth_table.hpp"
#include "util/rng.hpp"

namespace mcx {

struct RandomSopOptions {
  std::size_t nin = 8;
  std::size_t nout = 1;
  std::size_t products = 10;
  /// Expected literals per product (clamped to [1, nin]).
  double literalsPerProduct = 3.0;
  /// Expected outputs asserted per product (clamped to [1, nout]); controls
  /// product sharing across outputs (high for bw/exp5-like circuits).
  double outputsPerProduct = 1.0;
  /// Fraction of products drawn as full minterms (every variable a literal);
  /// models the dense-row tail of arithmetic benchmarks like clip.
  double heavyLiteralFraction = 0.0;
  /// Fraction of products drawn with @ref heavyOutputsPerProduct expected
  /// outputs; models the high-sharing tail of circuits like exp5.
  double heavyOutputFraction = 0.0;
  double heavyOutputsPerProduct = 0.0;
  /// Ensure no product is single-cube contained in another.
  bool irredundant = true;
};

/// Random multi-output SOP cover; deterministic given the Rng state. The
/// cover has exactly opts.products cubes except at saturated small aritys
/// where fewer distinct cubes are reachable (best effort, never empty).
Cover randomSop(const RandomSopOptions& opts, Rng& rng);

/// Weight function family (rd53, rd73, rd84): @p n inputs, ceil(log2(n+1))
/// outputs; output word = binary encoding of the input popcount.
TruthTable weightFunction(std::size_t n);

/// Integer square root: @p bits inputs, ceil(bits/2) outputs;
/// out = floor(sqrt(in)).
TruthTable sqrtFunction(std::size_t bits);

/// XOR of n inputs (worst case for two-level synthesis: 2^(n-1) products).
TruthTable parityFunction(std::size_t n);

/// Majority of n inputs (n odd recommended).
TruthTable majorityFunction(std::size_t n);

/// Ripple-carry adder: two @p bits words in, bits+1 outputs (sum, carry).
TruthTable adderFunction(std::size_t bits);

/// Binarized neural-network layer: @p nin binary inputs, @p nout sign
/// neurons. Neuron o fires iff sum_i w[o][i] * (2*x_i - 1) > 0, with
/// weights w in {-1, +1} drawn deterministically from (nin, nout) — the
/// same id always names the same function. The error-tolerant workload
/// axis: a few wrong minterms degrade classification accuracy gracefully
/// instead of breaking correctness outright.
TruthTable nnLayerFunction(std::size_t nin, std::size_t nout);

/// Random truth table with ON density @p onesDensity per output.
TruthTable randomTruthTable(std::size_t nin, std::size_t nout, double onesDensity, Rng& rng);

}  // namespace mcx
