// Irredundant sum-of-products construction (Minato-Morreale).
//
// Computes, from truth tables, an irredundant SOP cover of any function in
// the interval [lower, upper] (lower = required ON set, upper = permitted ON
// set, i.e. ON ∪ DC). This is the primary truth-table-to-cover path of the
// library; espresso (logic/espresso.hpp) can polish the result further.
#pragma once

#include "logic/cover.hpp"
#include "logic/truth_table.hpp"

namespace mcx {

/// Single-output ISOP. @p lower must be a subset of @p upper; both are
/// full-width truth tables (2^nin bits).
std::vector<Cube> isop(const DynBits& lower, const DynBits& upper, std::size_t nin);

/// Multi-output ISOP of a truth table (per output, then merged so cubes with
/// identical input parts share a row). @p dc is an optional don't-care table.
Cover isopCover(const TruthTable& on);
Cover isopCover(const TruthTable& on, const TruthTable& dc);

}  // namespace mcx
