#include "logic/cover.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace mcx {

void Cover::add(Cube c) {
  MCX_REQUIRE(c.nin() == nin_ && c.nout() == nout_, "Cover::add arity mismatch");
  cubes_.push_back(std::move(c));
}

std::size_t Cover::literalCount() const {
  std::size_t n = 0;
  for (const Cube& c : cubes_) n += c.literalCount();
  return n;
}

DynBits Cover::evaluate(const DynBits& input) const {
  DynBits out(nout_);
  for (const Cube& c : cubes_) {
    if (!c.coversMinterm(input)) continue;
    out |= c.outputBits();
  }
  return out;
}

std::vector<Cube> Cover::projection(std::size_t o) const {
  MCX_REQUIRE(o < nout_, "Cover::projection out of range");
  std::vector<Cube> result;
  for (const Cube& c : cubes_)
    if (c.out(o)) result.push_back(c);
  return result;
}

void Cover::mergeDuplicateInputs() {
  std::map<DynBits, std::size_t> seen;  // input bits -> index in merged
  std::vector<Cube> merged;
  merged.reserve(cubes_.size());
  for (Cube& c : cubes_) {
    if (c.inputEmpty() || (nout_ > 0 && c.outputBits().none())) continue;
    auto [it, inserted] = seen.emplace(c.inputBits(), merged.size());
    if (inserted) {
      merged.push_back(std::move(c));
    } else {
      merged[it->second].outputBits() |= c.outputBits();
    }
  }
  cubes_ = std::move(merged);
}

void Cover::removeSingleCubeContained() {
  std::vector<bool> dead(cubes_.size(), false);
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (dead[i]) continue;
    for (std::size_t j = 0; j < cubes_.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (cubes_[j].contains(cubes_[i])) {
        // Tie-break identical cubes deterministically by keeping the lower
        // index.
        if (cubes_[i].contains(cubes_[j]) && i < j) continue;
        dead[i] = true;
        break;
      }
    }
  }
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i)
    if (!dead[i]) kept.push_back(std::move(cubes_[i]));
  cubes_ = std::move(kept);
}

Cover Cover::universe(std::size_t nin, std::size_t nout) {
  Cover c(nin, nout);
  Cube u(nin, nout);
  for (std::size_t o = 0; o < nout; ++o) u.setOut(o);
  c.add(std::move(u));
  return c;
}

std::string Cover::toString() const {
  std::string s;
  for (const Cube& c : cubes_) {
    s += c.toPlaString();
    s.push_back('\n');
  }
  return s;
}

Cube makeCube(const std::string& inputPattern, const std::string& outputPattern) {
  Cube c(inputPattern.size(), outputPattern.size());
  for (std::size_t i = 0; i < inputPattern.size(); ++i) {
    switch (inputPattern[i]) {
      case '0': c.setLit(i, Lit::Neg); break;
      case '1': c.setLit(i, Lit::Pos); break;
      case '-': case '2': c.setLit(i, Lit::DontCare); break;
      case '?': c.setLit(i, Lit::Empty); break;
      default: throw ParseError(std::string("bad cube input character '") + inputPattern[i] + "'");
    }
  }
  for (std::size_t o = 0; o < outputPattern.size(); ++o) {
    switch (outputPattern[o]) {
      case '0': break;
      case '1': c.setOut(o); break;
      default: throw ParseError(std::string("bad cube output character '") + outputPattern[o] + "'");
    }
  }
  return c;
}

}  // namespace mcx
