// Cover: a multi-output sum-of-products (a list of Cubes with shared arity).
//
// This is the central logic representation of the library: PLA files parse
// into covers, the espresso-style minimizer rewrites covers, and the
// crossbar function matrix (xbar/function_matrix.hpp) is built from a cover.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "logic/cube.hpp"
#include "util/bits.hpp"

namespace mcx {

class Cover {
public:
  Cover() = default;
  Cover(std::size_t nin, std::size_t nout) : nin_(nin), nout_(nout) {}

  std::size_t nin() const { return nin_; }
  std::size_t nout() const { return nout_; }
  std::size_t size() const { return cubes_.size(); }
  bool empty() const { return cubes_.empty(); }

  const Cube& cube(std::size_t i) const { return cubes_[i]; }
  Cube& cube(std::size_t i) { return cubes_[i]; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  std::vector<Cube>& cubes() { return cubes_; }

  /// Append a cube; its arity must match the cover's.
  void add(Cube c);
  void clear() { cubes_.clear(); }

  /// Total number of literals over all cubes.
  std::size_t literalCount() const;

  /// Evaluate all outputs on one input assignment (bit i = value of x_i).
  DynBits evaluate(const DynBits& input) const;

  /// The input parts of all cubes asserting output @p o.
  std::vector<Cube> projection(std::size_t o) const;

  /// Merge cubes with identical input parts by ORing their output parts,
  /// and drop cubes with empty inputs or empty output sets.
  void mergeDuplicateInputs();

  /// Remove any cube contained (inputs and outputs) in another single cube.
  void removeSingleCubeContained();

  /// The universe cover: one all-don't-care cube asserting every output.
  static Cover universe(std::size_t nin, std::size_t nout);

  /// Cover computing the complement on no minterm (empty ON set).
  static Cover emptyCover(std::size_t nin, std::size_t nout) { return Cover(nin, nout); }

  /// PLA-body-style rendering, one cube per line.
  std::string toString() const;

  bool operator==(const Cover& o) const = default;

private:
  std::size_t nin_ = 0;
  std::size_t nout_ = 0;
  std::vector<Cube> cubes_;
};

/// Convenience: make a cube of @p cover's arity from a PLA-style pattern,
/// e.g. cube("1-0", "10") = x1 !x3 asserting output 1 of 2.
Cube makeCube(const std::string& inputPattern, const std::string& outputPattern);

}  // namespace mcx
