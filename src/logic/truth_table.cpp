#include "logic/truth_table.hpp"

#include "util/error.hpp"

namespace mcx {

TruthTable::TruthTable(std::size_t nin, std::size_t nout) : nin_(nin), nout_(nout) {
  MCX_REQUIRE(nin <= 24, "TruthTable limited to 24 inputs");
  bits_.assign(nout, DynBits(std::size_t{1} << nin));
}

bool TruthTable::get(std::size_t output, std::size_t minterm) const {
  MCX_REQUIRE(output < nout_, "TruthTable::get output out of range");
  return bits_[output].test(minterm);
}

void TruthTable::set(std::size_t output, std::size_t minterm, bool value) {
  MCX_REQUIRE(output < nout_, "TruthTable::set output out of range");
  bits_[output].set(minterm, value);
}

const DynBits& TruthTable::bits(std::size_t output) const {
  MCX_REQUIRE(output < nout_, "TruthTable::bits output out of range");
  return bits_[output];
}

DynBits& TruthTable::bits(std::size_t output) {
  MCX_REQUIRE(output < nout_, "TruthTable::bits output out of range");
  return bits_[output];
}

std::size_t TruthTable::countOnes(std::size_t output) const { return bits(output).count(); }

TruthTable TruthTable::fromCover(const Cover& cover) {
  TruthTable tt(cover.nin(), cover.nout());
  for (const Cube& c : cover.cubes()) {
    if (c.inputEmpty()) continue;
    const DynBits cubeTT = ttOfCube(c);
    c.outputBits().forEachSet([&](std::size_t o) { tt.bits_[o] |= cubeTT; });
  }
  return tt;
}

TruthTable TruthTable::fromFunction(std::size_t nin, std::size_t nout,
                                    const std::function<bool(std::size_t, std::size_t)>& fn) {
  TruthTable tt(nin, nout);
  for (std::size_t m = 0; m < tt.numMinterms(); ++m)
    for (std::size_t o = 0; o < nout; ++o)
      if (fn(m, o)) tt.set(o, m);
  return tt;
}

TruthTable TruthTable::complemented() const {
  TruthTable tt(*this);
  for (auto& b : tt.bits_) b = ~b;
  return tt;
}

DynBits ttVarMask(std::size_t nin, std::size_t var) {
  MCX_REQUIRE(var < nin, "ttVarMask out of range");
  const std::size_t n = std::size_t{1} << nin;
  DynBits mask(n);
  if (var >= 6) {
    // Whole words alternate in blocks of 2^(var-6) words.
    auto& words = mask.mutableWords();
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < words.size(); ++w)
      if ((w / block) & 1u) words[w] = ~DynBits::Word{0};
  } else {
    // Pattern repeats within each word.
    static constexpr DynBits::Word kPatterns[6] = {
        0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
        0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull};
    for (auto& w : mask.mutableWords()) w = kPatterns[var];
  }
  // Trim tail bits for nin < 6.
  if (n < DynBits::kWordBits && !mask.mutableWords().empty())
    mask.mutableWords()[0] &= (DynBits::Word{1} << n) - 1;
  return mask;
}

namespace {

// Shift the set bits of f across the var axis: returns g with
// g(m | bit) = f(m) pattern movement. dir=true moves 0-side to 1-side.
DynBits ttShiftAcross(const DynBits& f, std::size_t nin, std::size_t var, bool toUpper) {
  const std::size_t n = std::size_t{1} << nin;
  DynBits r(n);
  auto& rw = r.mutableWords();
  const auto& fw = f.words();
  if (var >= 6) {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < fw.size(); ++w) {
      const bool upper = ((w / block) & 1u) != 0;
      if (toUpper && !upper) rw[w + block] = fw[w];
      if (!toUpper && upper) rw[w - block] = fw[w];
    }
  } else {
    const unsigned shift = 1u << var;
    const DynBits::Word lowerHalf = ~ttVarMask(std::min<std::size_t>(nin, 6), var)
                                        .words()[0];  // pattern of var==0 positions
    for (std::size_t w = 0; w < fw.size(); ++w) {
      if (toUpper)
        rw[w] = (fw[w] & lowerHalf) << shift;
      else
        rw[w] = (fw[w] >> shift) & lowerHalf;
    }
    if (n < DynBits::kWordBits && !rw.empty()) rw[0] &= (DynBits::Word{1} << n) - 1;
  }
  return r;
}

}  // namespace

DynBits ttCofactor1(const DynBits& f, std::size_t nin, std::size_t var) {
  const DynBits mask = ttVarMask(nin, var);
  DynBits upper = f;
  upper &= mask;
  DynBits spread = ttShiftAcross(upper, nin, var, /*toUpper=*/false);
  spread |= upper;
  return spread;
}

DynBits ttCofactor0(const DynBits& f, std::size_t nin, std::size_t var) {
  const DynBits mask = ttVarMask(nin, var);
  DynBits lower = f;
  lower.andNot(mask);
  DynBits spread = ttShiftAcross(lower, nin, var, /*toUpper=*/true);
  spread |= lower;
  return spread;
}

DynBits ttOfCube(const Cube& cube) {
  const std::size_t nin = cube.nin();
  DynBits tt(std::size_t{1} << nin, true);
  for (std::size_t v = 0; v < nin; ++v) {
    switch (cube.lit(v)) {
      case Lit::DontCare: break;
      case Lit::Pos: tt &= ttVarMask(nin, v); break;
      case Lit::Neg: tt.andNot(ttVarMask(nin, v)); break;
      case Lit::Empty: return DynBits(std::size_t{1} << nin); // empty cube
    }
  }
  return tt;
}

DynBits ttOfCubes(const std::vector<Cube>& cubes, std::size_t nin) {
  DynBits tt(std::size_t{1} << nin);
  for (const Cube& c : cubes) tt |= ttOfCube(c);
  return tt;
}

}  // namespace mcx
