#include "logic/isop.hpp"

#include "util/error.hpp"

namespace mcx {

namespace {

struct IsopCtx {
  std::size_t nin;
};

// Returns cubes (with nout = 0) covering [L, U]; also sets `computed` to the
// truth table of the returned cover.
std::vector<Cube> isopRec(const IsopCtx& ctx, const DynBits& L, const DynBits& U,
                          std::size_t varCount, DynBits& computed) {
  computed = DynBits(L.size());
  if (L.none()) return {};
  if (U.all()) {
    computed.setAll();
    std::vector<Cube> r;
    r.emplace_back(ctx.nin, 0);
    return r;
  }
  MCX_REQUIRE(varCount > 0, "isop: inconsistent interval");
  const std::size_t v = varCount - 1;

  const DynBits L0 = ttCofactor0(L, ctx.nin, v);
  const DynBits L1 = ttCofactor1(L, ctx.nin, v);
  const DynBits U0 = ttCofactor0(U, ctx.nin, v);
  const DynBits U1 = ttCofactor1(U, ctx.nin, v);

  // Minterms that can only be covered with a !x_v (resp. x_v) cube.
  DynBits Lneg = L0;
  Lneg.andNot(U1);
  DynBits Lpos = L1;
  Lpos.andNot(U0);

  DynBits cov0, cov1, covStar;
  std::vector<Cube> C0 = isopRec(ctx, Lneg, U0, v, cov0);
  std::vector<Cube> C1 = isopRec(ctx, Lpos, U1, v, cov1);

  // What remains must be coverable independently of x_v.
  DynBits Lrem0 = L0;
  Lrem0.andNot(cov0);
  DynBits Lrem1 = L1;
  Lrem1.andNot(cov1);
  DynBits Lstar = Lrem0;
  Lstar |= Lrem1;
  DynBits Ustar = U0;
  Ustar &= U1;
  std::vector<Cube> Cstar = isopRec(ctx, Lstar, Ustar, v, covStar);

  const DynBits mask = ttVarMask(ctx.nin, v);
  std::vector<Cube> result;
  result.reserve(C0.size() + C1.size() + Cstar.size());
  for (Cube& c : C0) {
    c.setLit(v, Lit::Neg);
    result.push_back(std::move(c));
  }
  for (Cube& c : C1) {
    c.setLit(v, Lit::Pos);
    result.push_back(std::move(c));
  }
  for (Cube& c : Cstar) result.push_back(std::move(c));

  cov0.andNot(mask);
  cov1 &= mask;
  computed = cov0;
  computed |= cov1;
  computed |= covStar;
  return result;
}

}  // namespace

std::vector<Cube> isop(const DynBits& lower, const DynBits& upper, std::size_t nin) {
  MCX_REQUIRE(lower.size() == (std::size_t{1} << nin) && upper.size() == lower.size(),
              "isop: truth table width mismatch");
  MCX_REQUIRE(lower.subsetOf(upper), "isop: lower must be a subset of upper");
  IsopCtx ctx{nin};
  DynBits computed;
  std::vector<Cube> cubes = isopRec(ctx, lower, upper, nin, computed);
  MCX_REQUIRE(lower.subsetOf(computed) && computed.subsetOf(upper), "isop: internal bound violation");
  return cubes;
}

Cover isopCover(const TruthTable& on) {
  const TruthTable dc(on.nin(), on.nout());
  return isopCover(on, dc);
}

Cover isopCover(const TruthTable& on, const TruthTable& dc) {
  MCX_REQUIRE(on.nin() == dc.nin() && on.nout() == dc.nout(), "isopCover: shape mismatch");
  Cover cover(on.nin(), on.nout());
  for (std::size_t o = 0; o < on.nout(); ++o) {
    DynBits upper = on.bits(o);
    upper |= dc.bits(o);
    for (const Cube& c : isop(on.bits(o), upper, on.nin())) {
      Cube mc(on.nin(), on.nout());
      mc.inputBits() = c.inputBits();
      mc.setOut(o);
      cover.add(std::move(mc));
    }
  }
  cover.mergeDuplicateInputs();
  return cover;
}

}  // namespace mcx
