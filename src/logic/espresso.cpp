#include "logic/espresso.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace mcx {

namespace {

/// Most binate variable: appears as Pos in some cube and Neg in another,
/// maximizing min(#pos, #neg); returns nin if the cover is unate.
std::size_t mostBinateVar(const std::vector<Cube>& cubes, std::size_t nin) {
  std::size_t best = nin;
  std::size_t bestScore = 0;
  for (std::size_t v = 0; v < nin; ++v) {
    std::size_t pos = 0, neg = 0;
    for (const Cube& c : cubes) {
      const Lit l = c.lit(v);
      if (l == Lit::Pos) ++pos;
      if (l == Lit::Neg) ++neg;
    }
    if (pos > 0 && neg > 0) {
      const std::size_t score = std::min(pos, neg) * 1024 + pos + neg;
      if (score > bestScore) {
        bestScore = score;
        best = v;
      }
    }
  }
  return best;
}

/// For a unate cover, the variable with the most literals (used to recurse
/// on unate covers during complement); nin if no literals at all.
std::size_t mostFrequentVar(const std::vector<Cube>& cubes, std::size_t nin) {
  std::size_t best = nin;
  std::size_t bestCount = 0;
  for (std::size_t v = 0; v < nin; ++v) {
    std::size_t n = 0;
    for (const Cube& c : cubes)
      if (c.lit(v) != Lit::DontCare) ++n;
    if (n > bestCount) {
      bestCount = n;
      best = v;
    }
  }
  return best;
}

bool hasFullDontCareCube(const std::vector<Cube>& cubes) {
  for (const Cube& c : cubes)
    if (c.literalCount() == 0 && !c.inputEmpty()) return true;
  return false;
}

void removeContainedCubes(std::vector<Cube>& cubes) {
  std::vector<bool> dead(cubes.size(), false);
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    if (dead[i]) continue;
    for (std::size_t j = 0; j < cubes.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (cubes[j].inputContains(cubes[i]) &&
          !(cubes[i].inputContains(cubes[j]) && i < j)) {
        dead[i] = true;
        break;
      }
    }
  }
  std::vector<Cube> kept;
  kept.reserve(cubes.size());
  for (std::size_t i = 0; i < cubes.size(); ++i)
    if (!dead[i]) kept.push_back(std::move(cubes[i]));
  cubes = std::move(kept);
}

}  // namespace

std::vector<Cube> cofactor(const std::vector<Cube>& cubes, std::size_t var, bool phase) {
  std::vector<Cube> result;
  result.reserve(cubes.size());
  for (const Cube& c : cubes) {
    const Lit l = c.lit(var);
    if (l == Lit::Empty) continue;
    if (phase && l == Lit::Neg) continue;
    if (!phase && l == Lit::Pos) continue;
    Cube r = c;
    r.setLit(var, Lit::DontCare);
    result.push_back(std::move(r));
  }
  return result;
}

std::vector<Cube> cofactorCube(const std::vector<Cube>& cubes, const Cube& c) {
  std::vector<Cube> result;
  result.reserve(cubes.size());
  for (const Cube& d : cubes) {
    if (!d.inputIntersects(c)) continue;
    Cube r = d;
    // Raise every variable where c holds a literal.
    r.inputBits() |= ~c.inputBits();
    result.push_back(std::move(r));
  }
  return result;
}

bool tautology(const std::vector<Cube>& cubes, std::size_t nin) {
  if (hasFullDontCareCube(cubes)) return true;
  if (cubes.empty() || nin == 0) return false;

  // Quick minterm-count upper bound: if the cubes cannot possibly cover the
  // space even without overlap, fail early (cap exponents to avoid overflow).
  if (nin < 62) {
    unsigned __int128 total = 0;
    const unsigned __int128 space = static_cast<unsigned __int128>(1) << nin;
    for (const Cube& c : cubes) {
      const std::size_t free = nin - c.literalCount();
      total += static_cast<unsigned __int128>(1) << std::min<std::size_t>(free, 62);
      if (total >= space) break;
    }
    if (total < space) return false;
  }

  const std::size_t v = mostBinateVar(cubes, nin);
  if (v == nin) {
    // Unate cover: tautology iff it contains the universal cube (already
    // checked above).
    return false;
  }
  return tautology(cofactor(cubes, v, false), nin) && tautology(cofactor(cubes, v, true), nin);
}

bool cubeCoveredBy(const Cube& c, const std::vector<Cube>& cubes, std::size_t nin) {
  if (c.inputEmpty()) return true;
  return tautology(cofactorCube(cubes, c), nin);
}

namespace {

std::vector<Cube> complementRec(std::vector<Cube> cubes, std::size_t nin, std::size_t nout) {
  if (cubes.empty()) {
    std::vector<Cube> r;
    r.emplace_back(nin, nout);
    return r;
  }
  if (hasFullDontCareCube(cubes)) return {};
  if (cubes.size() == 1) {
    // De Morgan on a single cube: one single-literal cube per literal.
    std::vector<Cube> r;
    const Cube& c = cubes.front();
    for (std::size_t v = 0; v < nin; ++v) {
      const Lit l = c.lit(v);
      if (l == Lit::DontCare) continue;
      Cube nc(nin, nout);
      nc.setLit(v, l == Lit::Pos ? Lit::Neg : Lit::Pos);
      r.push_back(std::move(nc));
    }
    return r;
  }

  std::size_t v = mostBinateVar(cubes, nin);
  if (v == nin) v = mostFrequentVar(cubes, nin);
  MCX_REQUIRE(v < nin, "complement: no splitting variable");

  std::vector<Cube> r0 = complementRec(cofactor(cubes, v, false), nin, nout);
  std::vector<Cube> r1 = complementRec(cofactor(cubes, v, true), nin, nout);

  std::vector<Cube> result;
  result.reserve(r0.size() + r1.size());
  for (Cube& c : r0) {
    c.setLit(v, Lit::Neg);
    result.push_back(std::move(c));
  }
  for (Cube& c : r1) {
    // Merge mirror-image cubes across the split into a single var-free cube.
    Cube probe = c;
    probe.setLit(v, Lit::Neg);
    bool merged = false;
    for (Cube& e : result) {
      if (e.inputBits() == probe.inputBits()) {
        e.setLit(v, Lit::DontCare);
        merged = true;
        break;
      }
    }
    if (!merged) {
      c.setLit(v, Lit::Pos);
      result.push_back(std::move(c));
    }
  }
  removeContainedCubes(result);
  return result;
}

}  // namespace

std::vector<Cube> complementCubes(std::vector<Cube> cubes, std::size_t nin, std::size_t nout) {
  // Drop empty cubes up front; they contribute nothing.
  std::erase_if(cubes, [](const Cube& c) { return c.inputEmpty(); });
  return complementRec(std::move(cubes), nin, nout);
}

Cube supercube(const std::vector<Cube>& cubes) {
  MCX_REQUIRE(!cubes.empty(), "supercube of empty list");
  Cube r = cubes.front();
  for (std::size_t i = 1; i < cubes.size(); ++i) r = r.supercubeWith(cubes[i]);
  return r;
}

namespace {

struct OffSets {
  // Per output: OFF cover input parts.
  std::vector<std::vector<Cube>> off;
};

OffSets buildOffSets(const Cover& on, const Cover& dc) {
  OffSets sets;
  sets.off.resize(on.nout());
  for (std::size_t o = 0; o < on.nout(); ++o) {
    std::vector<Cube> upper = on.projection(o);
    for (const Cube& c : dc.projection(o)) upper.push_back(c);
    sets.off[o] = complementCubes(std::move(upper), on.nin(), on.nout());
  }
  return sets;
}

bool intersectsAny(const Cube& c, const std::vector<Cube>& cubes) {
  for (const Cube& d : cubes)
    if (c.inputIntersects(d)) return true;
  return false;
}

/// EXPAND: enlarge each cube against the OFF sets — first by *covering*
/// (grow to the supercube with another cube whenever that stays off the OFF
/// set, which is what actually removes cubes), then by raising the remaining
/// literals, then optionally by raising outputs. Contained cubes are dropped
/// at the end.
void expand(Cover& cover, const OffSets& offs, bool expandOutputs) {
  // Process larger cubes first so small cubes get absorbed by already
  // expanded ones.
  std::sort(cover.cubes().begin(), cover.cubes().end(), [](const Cube& a, const Cube& b) {
    return a.literalCount() < b.literalCount();
  });
  std::vector<bool> absorbed(cover.size(), false);
  for (std::size_t ci = 0; ci < cover.size(); ++ci) {
    if (absorbed[ci]) continue;
    Cube& c = cover.cube(ci);
    // The OFF cubes relevant to this cube: union over its asserted outputs.
    std::vector<const Cube*> blocking;
    c.outputBits().forEachSet([&](std::size_t o) {
      for (const Cube& d : offs.off[o]) blocking.push_back(&d);
    });

    // Covering pass: absorb any cube whose outputs are a subset of ours and
    // whose supercube with us avoids the OFF set.
    bool grew = true;
    while (grew) {
      grew = false;
      for (std::size_t di = 0; di < cover.size(); ++di) {
        if (di == ci || absorbed[di]) continue;
        const Cube& d = cover.cube(di);
        if (!d.outputBits().subsetOf(c.outputBits())) continue;
        Cube sc = c;
        sc.inputBits() |= d.inputBits();
        bool blocked = false;
        for (const Cube* b : blocking) {
          if (sc.inputIntersects(*b)) {
            blocked = true;
            break;
          }
        }
        if (blocked) continue;
        c.inputBits() = sc.inputBits();
        absorbed[di] = true;
        grew = true;
      }
    }

    // Order variables by how many OFF cubes would block raising them.
    std::vector<std::pair<std::size_t, std::size_t>> order;  // (#blockers, var)
    for (std::size_t v = 0; v < cover.nin(); ++v) {
      if (c.lit(v) == Lit::DontCare) continue;
      Cube raised = c;
      raised.setLit(v, Lit::DontCare);
      std::size_t blockers = 0;
      for (const Cube* d : blocking)
        if (raised.inputIntersects(*d)) ++blockers;
      order.emplace_back(blockers, v);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [blockers, v] : order) {
      if (blockers > 0) continue;  // cheap accept only when free at scan time
      Cube raised = c;
      raised.setLit(v, Lit::DontCare);
      bool blocked = false;
      for (const Cube* d : blocking) {
        if (raised.inputIntersects(*d)) {
          blocked = true;
          break;
        }
      }
      if (!blocked) c = raised;
    }
    // Second pass: variables that were blocked at scan time may have become
    // free after other raises failed; try them once more in order.
    for (const auto& [blockers, v] : order) {
      if (c.lit(v) == Lit::DontCare) continue;
      Cube raised = c;
      raised.setLit(v, Lit::DontCare);
      bool blocked = false;
      for (const Cube* d : blocking) {
        if (raised.inputIntersects(*d)) {
          blocked = true;
          break;
        }
      }
      if (!blocked) c = raised;
    }

    if (expandOutputs) {
      for (std::size_t o = 0; o < cover.nout(); ++o) {
        if (c.out(o)) continue;
        if (!intersectsAny(c, offs.off[o])) c.setOut(o);
      }
    }
  }
  std::vector<Cube> kept;
  kept.reserve(cover.size());
  for (std::size_t i = 0; i < cover.size(); ++i)
    if (!absorbed[i]) kept.push_back(std::move(cover.cube(i)));
  cover.cubes() = std::move(kept);
  cover.removeSingleCubeContained();
}

/// IRREDUNDANT: remove each cube (or clear output bits) that is covered by
/// the rest of the cover plus the don't-care set.
void irredundant(Cover& cover, const Cover& dc) {
  // Visit smaller cubes first: they are most likely to be redundant.
  std::vector<std::size_t> order(cover.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cover.cube(a).literalCount() > cover.cube(b).literalCount();
  });
  for (std::size_t idx : order) {
    Cube& c = cover.cube(idx);
    std::vector<std::size_t> outs;
    c.outputBits().forEachSet([&](std::size_t o) { outs.push_back(o); });
    for (std::size_t o : outs) {
      std::vector<Cube> rest;
      for (std::size_t j = 0; j < cover.size(); ++j) {
        if (j == idx) continue;
        if (cover.cube(j).out(o)) rest.push_back(cover.cube(j));
      }
      for (const Cube& d : dc.projection(o)) rest.push_back(d);
      if (cubeCoveredBy(c, rest, cover.nin())) c.setOut(o, false);
    }
  }
  std::erase_if(cover.cubes(),
                [](const Cube& c) { return c.outputBits().none() || c.inputEmpty(); });
}

/// REDUCE: shrink each cube to the smallest cube still covering the minterms
/// no other cube covers, enabling the next EXPAND to move in a different
/// direction.
void reduce(Cover& cover, const Cover& dc) {
  for (std::size_t idx = 0; idx < cover.size(); ++idx) {
    Cube& c = cover.cube(idx);
    bool any = false;
    Cube needed(cover.nin(), cover.nout());
    needed.inputBits().resetAll();
    std::vector<std::size_t> outs;
    c.outputBits().forEachSet([&](std::size_t o) { outs.push_back(o); });
    for (std::size_t o : outs) {
      std::vector<Cube> rest;
      for (std::size_t j = 0; j < cover.size(); ++j) {
        if (j == idx) continue;
        if (cover.cube(j).out(o)) rest.push_back(cover.cube(j));
      }
      for (const Cube& d : dc.projection(o)) rest.push_back(d);
      // Part of c not covered by the rest, within c's subspace.
      std::vector<Cube> inside = cofactorCube(rest, c);
      std::vector<Cube> uncovered = complementCubes(std::move(inside), cover.nin(), cover.nout());
      if (uncovered.empty()) continue;  // redundant for o; irredundant will fix
      Cube sc = supercube(uncovered);
      needed.inputBits() |= sc.inputBits();
      any = true;
    }
    if (!any) continue;
    Cube shrunk = c;
    shrunk.inputBits() &= needed.inputBits();
    // The supercube was computed in c's cofactor space; re-intersect with c.
    shrunk.inputBits() &= c.inputBits();
    if (!shrunk.inputEmpty()) c.inputBits() = shrunk.inputBits();
  }
}

struct Cost {
  std::size_t cubes;
  std::size_t literals;
  bool operator<(const Cost& o) const {
    return cubes != o.cubes ? cubes < o.cubes : literals < o.literals;
  }
};

Cost costOf(const Cover& c) { return {c.size(), c.literalCount()}; }

}  // namespace

Cover espressoMinimize(const Cover& on, const Cover& dc, const EspressoOptions& opts) {
  MCX_REQUIRE(on.nin() == dc.nin() && on.nout() == dc.nout(),
              "espressoMinimize: ON/DC shape mismatch");
  Cover cover = on;
  cover.mergeDuplicateInputs();
  if (cover.empty()) return cover;

  const OffSets offs = buildOffSets(on, dc);

  Cost best = costOf(cover);
  Cover bestCover = cover;
  for (std::size_t pass = 0; pass < opts.maxPasses; ++pass) {
    expand(cover, offs, opts.expandOutputs);
    cover.mergeDuplicateInputs();
    irredundant(cover, dc);
    const Cost now = costOf(cover);
    if (now < best) {
      best = now;
      bestCover = cover;
    } else if (pass > 0) {
      break;
    }
    if (opts.reduce && pass + 1 < opts.maxPasses) reduce(cover, dc);
  }
  return bestCover;
}

Cover espressoMinimize(const Cover& on, const EspressoOptions& opts) {
  return espressoMinimize(on, Cover(on.nin(), on.nout()), opts);
}

Cover complementCover(const Cover& on, const Cover& dc) {
  Cover result(on.nin(), on.nout());
  for (std::size_t o = 0; o < on.nout(); ++o) {
    std::vector<Cube> upper = on.projection(o);
    for (const Cube& c : dc.projection(o)) upper.push_back(c);
    std::vector<Cube> off = complementCubes(std::move(upper), on.nin(), on.nout());
    // Remove the DC part again: complement of ON∪DC is OFF; the negated
    // function's ON set is OFF, and DC stays DC (handled by caller).
    for (Cube& c : off) {
      Cube mc(on.nin(), on.nout());
      mc.inputBits() = c.inputBits();
      mc.setOut(o);
      result.add(std::move(mc));
    }
  }
  result.mergeDuplicateInputs();
  result.removeSingleCubeContained();
  return result;
}

Cover complementCover(const Cover& on) { return complementCover(on, Cover(on.nin(), on.nout())); }

}  // namespace mcx
