#include "logic/sop_parser.hpp"

#include <cctype>

#include "util/error.hpp"

namespace mcx {

namespace {

struct Token {
  std::size_t var;   // 0-based
  bool negated;
};

struct ParsedProduct {
  std::vector<Token> literals;
};

}  // namespace

Cover parseSop(const std::string& text, std::size_t nin) {
  std::vector<ParsedProduct> products(1);
  std::size_t maxVar = 0;

  std::size_t i = 0;
  auto skipWs = [&] {
    while (i < text.size() && (std::isspace(static_cast<unsigned char>(text[i])) || text[i] == '*'))
      ++i;
  };
  skipWs();
  bool sawAny = false;
  while (i < text.size()) {
    const char ch = text[i];
    if (ch == '+') {
      MCX_REQUIRE(!products.back().literals.empty(), "parseSop: empty product before '+'");
      products.emplace_back();
      ++i;
      skipWs();
      continue;
    }
    bool neg = false;
    if (ch == '!' || ch == '~') {
      neg = true;
      ++i;
      skipWs();
    }
    if (i >= text.size() || (text[i] != 'x' && text[i] != 'X'))
      throw ParseError("parseSop: expected variable at position " + std::to_string(i));
    ++i;
    std::size_t start = i;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
    if (start == i) throw ParseError("parseSop: variable needs an index");
    const std::size_t idx = std::stoul(text.substr(start, i - start));
    if (idx == 0) throw ParseError("parseSop: variables are 1-based");
    if (i < text.size() && text[i] == '\'') {
      neg = !neg;
      ++i;
    }
    products.back().literals.push_back({idx - 1, neg});
    maxVar = std::max(maxVar, idx);
    sawAny = true;
    skipWs();
  }
  MCX_REQUIRE(sawAny, "parseSop: empty expression");
  MCX_REQUIRE(!products.back().literals.empty(), "parseSop: trailing '+'");

  if (nin == 0) nin = maxVar;
  MCX_REQUIRE(maxVar <= nin, "parseSop: variable index exceeds declared arity");

  Cover cover(nin, 1);
  for (const ParsedProduct& p : products) {
    Cube c(nin, 1);
    for (const Token& t : p.literals) {
      const Lit existing = c.lit(t.var);
      const Lit wanted = t.negated ? Lit::Neg : Lit::Pos;
      if (existing != Lit::DontCare && existing != wanted)
        throw ParseError("parseSop: contradictory literals for x" + std::to_string(t.var + 1));
      c.setLit(t.var, wanted);
    }
    c.setOut(0);
    cover.add(std::move(c));
  }
  return cover;
}

}  // namespace mcx
