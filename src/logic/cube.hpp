// Cube: one product term of a multi-output sum-of-products cover.
//
// The input part uses positional cube notation, two bits per variable:
//   bit(2i)   ("neg") set  => the cube admits x_i = 0
//   bit(2i+1) ("pos") set  => the cube admits x_i = 1
// so 11 = don't care, 10 = positive literal x_i, 01 = negative literal !x_i,
// 00 = empty (contradiction). The output part is one bit per function output:
// the product term is part of the ON cover of every output whose bit is set.
#pragma once

#include <cstddef>
#include <string>

#include "util/bits.hpp"

namespace mcx {

/// The state of one variable inside a cube. Values are chosen so that
/// (neg bit | pos bit << 1) == static_cast<int>(Lit).
enum class Lit : unsigned char {
  Empty = 0,     ///< contradiction: no value of the variable satisfies the cube
  Neg = 1,       ///< literal !x
  Pos = 2,       ///< literal x
  DontCare = 3,  ///< variable absent from the product
};

class Cube {
public:
  Cube() = default;
  /// A cube over @p nin inputs and @p nout outputs with all inputs
  /// don't-care and no outputs asserted.
  Cube(std::size_t nin, std::size_t nout);

  std::size_t nin() const { return nin_; }
  std::size_t nout() const { return out_.size(); }

  Lit lit(std::size_t var) const;
  void setLit(std::size_t var, Lit lit);

  bool out(std::size_t o) const { return out_.test(o); }
  void setOut(std::size_t o, bool value = true) { out_.set(o, value); }

  const DynBits& inputBits() const { return in_; }
  DynBits& inputBits() { return in_; }
  const DynBits& outputBits() const { return out_; }
  DynBits& outputBits() { return out_; }

  /// True iff some variable pair is 00 (the cube covers no minterm).
  bool inputEmpty() const;

  /// Number of variables that are restricted (Pos or Neg literal).
  std::size_t literalCount() const;

  /// True iff the input part of *this covers the input part of @p o
  /// (every value combination admitted by o is admitted by *this).
  bool inputContains(const Cube& o) const { return o.in_.subsetOf(in_); }

  /// Containment including outputs: inputContains(o) and the output set of
  /// *this is a superset of o's.
  bool contains(const Cube& o) const {
    return inputContains(o) && o.out_.subsetOf(out_);
  }

  /// True iff the input parts share at least one minterm.
  bool inputIntersects(const Cube& o) const;

  /// Number of variables whose pairwise AND is empty (00). Zero means the
  /// cubes intersect; one means consensus exists.
  std::size_t inputDistance(const Cube& o) const;

  /// Intersection of input parts (may be empty); outputs are ANDed.
  Cube intersect(const Cube& o) const;

  /// Smallest cube containing both input parts (bitwise OR); outputs ORed.
  Cube supercubeWith(const Cube& o) const;

  /// True iff the minterm given by @p assignment (bit i = value of x_i)
  /// is covered by the input part.
  bool coversMinterm(const DynBits& assignment) const;

  /// Input part as a PLA-style string: '0', '1' or '-' per variable.
  std::string inputString() const;
  /// Full PLA line: input part, space, output part ('0'/'1').
  std::string toPlaString() const;

  bool operator==(const Cube& o) const { return in_ == o.in_ && out_ == o.out_; }
  bool operator!=(const Cube& o) const { return !(*this == o); }

private:
  std::size_t nin_ = 0;
  DynBits in_;   // width 2 * nin
  DynBits out_;  // width nout
};

}  // namespace mcx
