// TruthTable: explicit 2^n representation of a multi-output Boolean function.
//
// Used as the ground-truth oracle in tests, as the seed format for the
// generated benchmark circuits (rd53/rd73/rd84/sqrt8, ...), and as the input
// to the Minato-Morreale ISOP construction (logic/isop.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "logic/cover.hpp"
#include "util/bits.hpp"

namespace mcx {

class TruthTable {
public:
  TruthTable() = default;
  /// All-zero function of @p nin inputs and @p nout outputs. nin <= 24.
  TruthTable(std::size_t nin, std::size_t nout);

  std::size_t nin() const { return nin_; }
  std::size_t nout() const { return nout_; }
  std::size_t numMinterms() const { return std::size_t{1} << nin_; }

  bool get(std::size_t output, std::size_t minterm) const;
  void set(std::size_t output, std::size_t minterm, bool value = true);

  const DynBits& bits(std::size_t output) const;
  DynBits& bits(std::size_t output);

  /// Number of ON minterms of @p output.
  std::size_t countOnes(std::size_t output) const;

  /// Build from a cover (ON-set semantics; absent minterms are 0).
  static TruthTable fromCover(const Cover& cover);

  /// Build from a callback: fn(mintermIndex, outputIndex) -> bool.
  static TruthTable fromFunction(std::size_t nin, std::size_t nout,
                                 const std::function<bool(std::size_t, std::size_t)>& fn);

  /// Per-output complement.
  TruthTable complemented() const;

  bool operator==(const TruthTable& o) const = default;

private:
  std::size_t nin_ = 0;
  std::size_t nout_ = 0;
  std::vector<DynBits> bits_;  // one 2^nin bitset per output
};

// --- Truth-table bit vector helpers (full-width, 2^nin bits) -------------

/// Bitset of width 2^nin whose bit m is set iff variable @p var is 1 in m.
DynBits ttVarMask(std::size_t nin, std::size_t var);

/// Positive cofactor as a full-width function independent of @p var:
/// result(m) = f(m with bit var forced to 1).
DynBits ttCofactor1(const DynBits& f, std::size_t nin, std::size_t var);
/// Negative cofactor: result(m) = f(m with bit var forced to 0).
DynBits ttCofactor0(const DynBits& f, std::size_t nin, std::size_t var);

/// Truth table (2^nin bits) of a cube's input part.
DynBits ttOfCube(const Cube& cube);

/// Truth table of the union of a list of cubes' input parts.
DynBits ttOfCubes(const std::vector<Cube>& cubes, std::size_t nin);

}  // namespace mcx
